"""Message-passing token ring — the paper's Section 7.1 reader exercise.

"Refinement of this program into one where the neighboring processes
communicate via message passing is left as an exercise to the reader."

Here is the exercise, solved in the counter-flushing style: ``N+1`` nodes
``0 .. N``; node ``j`` keeps a counter ``x.j ∈ 0..K-1`` and a single-slot
lossy channel ``ch.j`` carries messages (counter values) from ``j`` to
``j+1 mod N+1``. Actions:

- **relay.j** (``j ≠ 0``): a message ``v ≠ x.j`` is waiting — adopt it
  and forward: ``x.j := v``, move the message to ``ch.j``. Adopting the
  token is the privilege: this is when node ``j`` may use the resource.
- **absorb.j** (``j ≠ 0``): a message ``v = x.j`` is waiting — a stale
  duplicate; drop it.
- **advance.0**: a message ``v = x.0`` arrived home — the token completed
  a round trip; start the next one: ``x.0 := x.0+1 mod K``, send the new
  value.
- **drop.0**: a message ``v ≠ x.0`` arrived at node 0 — stale; drop it.
- **timeout.0**: *no message anywhere in the ring* — the token was lost
  (or the initial state had none); regenerate with a fresh number:
  ``x.0 := x.0+1 mod K``, send it. The global-emptiness guard is the
  standard abstraction of a timeout that outlives every in-flight
  message; it is node 0's only non-local read, and implementations
  realize it with a conservative timer.

Legitimate states (``S``): exactly one message in flight, carrying
``v = x.0``, with every node up to the message's position already at
``v`` and every node past it still at ``v - 1 mod K``.

Faults: transient corruption of any counters and channel slots — which
subsumes token loss (empty a slot), token duplication (fill a second
slot) and counter corruption. Stabilization requires ``K`` large enough
that a fresh number is distinguishable from every stale value in the
system; the E12 experiment locates the exact threshold by model checking.
"""

from __future__ import annotations

from repro.core.actions import Action, Assignment
from repro.core.domains import ModularDomain
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.core.variables import Variable
from repro.messaging.channels import SlotChannel
from repro.topology import Ring

__all__ = [
    "x_var",
    "channel_var",
    "build_mp_token_ring",
    "mp_ring_invariant",
    "messages_in_flight",
]


def x_var(j: int) -> str:
    """Node ``j``'s counter variable."""
    return f"x.{j}"


def channel_var(j: int) -> str:
    """The channel from node ``j`` to its successor."""
    return f"ch.{j}"


def messages_in_flight(ring: Ring, state: State) -> list[tuple[int, int]]:
    """The ``(channel index, value)`` pairs of all in-flight messages."""
    found = []
    for j in ring.nodes:
        value = state[channel_var(j)]
        if value is not None:
            found.append((j, value))
    return found


def build_mp_token_ring(n_nodes: int, k: int) -> tuple[Program, Predicate]:
    """Build the message-passing ring.

    Args:
        n_nodes: Ring size (the paper's ``N+1``); at least 2.
        k: Counter modulus. Experiment E12 shows stabilization holds for
            ``k >= n_nodes + 1`` and fails below.

    Returns:
        The program and its invariant ``S``.
    """
    if n_nodes < 2:
        raise ValueError("a ring needs at least 2 nodes")
    if k < 2:
        raise ValueError("need at least 2 counter values")
    ring = Ring(n_nodes)
    counter = ModularDomain(k)
    values = list(range(k))

    variables: list[Variable] = []
    channels: list[SlotChannel] = []
    for j in ring.nodes:
        variables.append(Variable(x_var(j), counter, process=j))
        channel = SlotChannel(channel_var(j), values, process=j)
        channels.append(channel)
        variables.append(channel.variable)

    all_channel_names = [channel_var(j) for j in ring.nodes]
    actions: list[Action] = []

    # Node 0.
    x0 = x_var(0)
    incoming0 = channel_var(ring.predecessor(0))
    out0 = channel_var(0)
    actions.append(
        Action(
            "advance.0",
            Predicate(
                lambda s: s[incoming0] is not None and s[incoming0] == s[x0],
                name="token returned home with the current number",
                support=(incoming0, x0),
            ),
            Assignment(
                {
                    x0: lambda s: (s[x0] + 1) % k,
                    incoming0: None,
                    out0: lambda s: (s[x0] + 1) % k,
                }
            ),
            reads=(incoming0, x0, out0),
            process=0,
        )
    )
    actions.append(
        Action(
            "drop.0",
            Predicate(
                lambda s: s[incoming0] is not None and s[incoming0] != s[x0],
                name="stale message at node 0",
                support=(incoming0, x0),
            ),
            Assignment({incoming0: None}),
            reads=(incoming0, x0),
            process=0,
        )
    )
    actions.append(
        Action(
            "timeout.0",
            Predicate(
                lambda s: all(s[name] is None for name in all_channel_names),
                name="no message anywhere (token lost)",
                support=all_channel_names,
            ),
            Assignment(
                {
                    x0: lambda s: (s[x0] + 1) % k,
                    out0: lambda s: (s[x0] + 1) % k,
                }
            ),
            reads=(*all_channel_names, x0),
            process=0,
        )
    )

    # Other nodes.
    for j in range(1, n_nodes):
        xj = x_var(j)
        incoming = channel_var(ring.predecessor(j))
        outgoing = channel_var(j)
        actions.append(
            Action(
                f"relay.{j}",
                Predicate(
                    lambda s, incoming=incoming, xj=xj: s[incoming] is not None
                    and s[incoming] != s[xj],
                    name=f"new token at node {j}",
                    support=(incoming, xj),
                ),
                Assignment(
                    {
                        xj: lambda s, incoming=incoming: s[incoming],
                        incoming: None,
                        outgoing: lambda s, incoming=incoming: s[incoming],
                    }
                ),
                reads=(incoming, xj, outgoing),
                process=j,
            )
        )
        actions.append(
            Action(
                f"absorb.{j}",
                Predicate(
                    lambda s, incoming=incoming, xj=xj: s[incoming] is not None
                    and s[incoming] == s[xj],
                    name=f"stale duplicate at node {j}",
                    support=(incoming, xj),
                ),
                Assignment({incoming: None}),
                reads=(incoming, xj),
                process=j,
            )
        )

    program = Program(f"mp-token-ring[{n_nodes},K={k}]", variables, actions)
    return program, mp_ring_invariant(ring, k)


def mp_ring_invariant(ring: Ring, k: int) -> Predicate:
    """``S``: one message, value ``x.0``, counters split around it.

    The message sits in some channel ``ch.p``; nodes ``0..p`` have
    already adopted the current number ``v = x.0`` and nodes ``p+1..N``
    still hold the previous number ``v - 1 mod K``.
    """
    names = [x_var(j) for j in ring.nodes] + [channel_var(j) for j in ring.nodes]

    def holds(state: State) -> bool:
        flights = messages_in_flight(ring, state)
        if len(flights) != 1:
            return False
        position, value = flights[0]
        if value != state[x_var(0)]:
            return False
        previous = (value - 1) % k
        for j in ring.nodes:
            expected = value if j <= position else previous
            if state[x_var(j)] != expected:
                return False
        return True

    return Predicate(holds, name="S(mp-token-ring)", support=names)
