"""Stabilizing BFS spanning tree (extension, Section 7 state refinement).

On a connected graph with a distinguished root, every node maintains a
distance estimate ``dist.j`` (capped at ``n``); the root drives its own
estimate to 0 and every other node recomputes ``1 + min`` over its
neighbors. The invariant is that every estimate equals the true BFS
level, from which parent pointers (any neighbor one level closer) induce
a BFS spanning tree.

This protocol is the library's showcase of the paper's Section 7 *state
refinement* possibilities: its constraint graph is **cyclic** (each
node's constraint reads all neighbors, and neighbors read back), so
Theorems 1–3 do not apply directly. Instead convergence is certified by
a **convergence stair** (Gouda–Multari, the paper's third possibility):
the closed predicates ::

    H_d  =  (∀j : level.j ≤ d  ⇒  dist.j = level.j)
            ∧ (∀j : level.j > d  ⇒  dist.j ≥ d + 1)

descend from ``true = H_{-1}`` to ``S = H_D`` (``D`` the graph's depth),
each ``H_d`` is closed, and every computation from ``H_{d-1}`` reaches
``H_d`` — exactly the shape :func:`repro.verification.stairs.check_stair`
verifies.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.actions import Action, Assignment
from repro.core.domains import IntegerRangeDomain
from repro.core.predicates import Predicate, all_of
from repro.core.program import Program
from repro.core.state import State
from repro.core.variables import Variable
from repro.topology.graph import Graph

__all__ = [
    "dist_var",
    "build_spanning_tree_program",
    "spanning_tree_invariant",
    "spanning_tree_stair",
    "derived_parent",
]


def dist_var(j: Hashable) -> str:
    """The name of node ``j``'s distance-estimate variable."""
    return f"dist.{j}"


def build_spanning_tree_program(graph: Graph, root: Hashable) -> Program:
    """The BFS distance program on ``graph`` rooted at ``root``.

    Estimates live in ``0 .. n`` (the cap keeps the state space finite
    and is never the correct value of a reachable node, since levels are
    at most ``n - 1``).
    """
    if not graph.is_connected():
        raise ValueError("the spanning-tree protocol requires a connected graph")
    n = len(graph)
    domain = IntegerRangeDomain(0, n)
    variables = [Variable(dist_var(j), domain, process=j) for j in graph.nodes]

    root_name = dist_var(root)
    actions = [
        Action(
            f"root.{root}",
            Predicate(
                lambda s: s[root_name] != 0,
                name=f"dist.{root} != 0",
                support=(root_name,),
            ),
            Assignment({root_name: 0}),
            reads=(root_name,),
            process=root,
        )
    ]
    for j in graph.nodes:
        if j == root:
            continue
        mine = dist_var(j)
        neighbor_names = [dist_var(k) for k in graph.neighbors(j)]
        reads = [mine, *neighbor_names]

        def recompute(s: State, neighbor_names=neighbor_names, n=n) -> int:
            return min(n, 1 + min(s[name] for name in neighbor_names))

        actions.append(
            Action(
                f"recompute.{j}",
                Predicate(
                    lambda s, mine=mine, recompute=recompute: s[mine] != recompute(s),
                    name=f"dist.{j} != 1 + min(neighbors)",
                    support=reads,
                ),
                Assignment({mine: recompute}),
                reads=reads,
                process=j,
            )
        )
    return Program(f"bfs-spanning-tree[root={root}]", variables, actions)


def spanning_tree_invariant(graph: Graph, root: Hashable) -> Predicate:
    """``S``: every distance estimate equals the true BFS level."""
    levels = graph.bfs_levels(root)
    parts = [
        Predicate(
            lambda s, name=dist_var(j), level=levels[j]: s[name] == level,
            name=f"dist.{j} = {levels[j]}",
            support=(dist_var(j),),
        )
        for j in graph.nodes
    ]
    return all_of(parts, name="S(spanning-tree)")


def spanning_tree_stair(graph: Graph, root: Hashable) -> list[Predicate]:
    """The convergence stair ``[true, H_0, H_1, …, H_D]``."""
    levels = graph.bfs_levels(root)
    depth = max(levels.values())
    names_and_levels = [(dist_var(j), levels[j]) for j in graph.nodes]
    support = [name for name, _ in names_and_levels]

    def make_stair_step(d: int) -> Predicate:
        def holds(s: State) -> bool:
            for name, level in names_and_levels:
                if level <= d:
                    if s[name] != level:
                        return False
                elif s[name] < d + 1:
                    return False
            return True

        return Predicate(holds, name=f"H_{d}", support=support)

    stair: list[Predicate] = [
        Predicate(lambda s: True, name="true = H_-1", support=())
    ]
    stair.extend(make_stair_step(d) for d in range(depth + 1))
    return stair


def derived_parent(graph: Graph, root: Hashable, state: State, j: Hashable) -> Hashable | None:
    """The BFS parent induced by the distance estimates.

    Any neighbor whose estimate is exactly one less; deterministic (the
    smallest by string order) so examples and tests are stable. ``None``
    for the root or when no qualifying neighbor exists (estimates not yet
    stabilized).
    """
    if j == root:
        return None
    mine = state[dist_var(j)]
    candidates = [
        k for k in graph.neighbors(j) if state[dist_var(k)] == mine - 1
    ]
    if not candidates:
        return None
    return min(candidates, key=str)
