"""Stabilizing leader election on a rooted tree (extension, Theorem 2).

Every node holds a ``ldr.j`` value; the invariant requires all nodes to
agree on the root's identity::

    S = (ldr.root = root)  ∧  (∀ non-root j :: ldr.j = ldr.(P.j))

The root's constraint is established by a convergence action that reads
and writes only the root's own variable — a *self-loop* in the constraint
graph — while each other node copies its parent. The graph is therefore
self-looping but not an out-tree (no node has indegree zero), which makes
this the natural minimal showcase of **Theorem 2**: per node the incoming
edge is unique, so the linear-order condition is trivial, and the
self-loop is exactly what the theorem's shape permits beyond Theorem 1.

Like the coloring protocol the design is silent: there are no closure
actions, and once ``S`` holds nothing is enabled.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.actions import Action, Assignment
from repro.core.candidate import CandidateTriple
from repro.core.constraints import Constraint, ConvergenceBinding
from repro.core.design import NonmaskingDesign
from repro.core.domains import FiniteDomain
from repro.core.expr import C, V
from repro.core.predicates import Predicate, all_of
from repro.core.program import Program
from repro.core.variables import Variable
from repro.protocols.base import process_nodes
from repro.topology.tree import RootedTree

__all__ = ["leader_var", "election_invariant", "build_leader_election_design"]


def leader_var(j: Hashable) -> str:
    """The name of node ``j``'s leader variable."""
    return f"ldr.{j}"


def election_invariant(tree: RootedTree) -> Predicate:
    """``S``: the root names itself and every node agrees with its parent."""
    root_name = leader_var(tree.root)
    root = tree.root
    parts = [
        (V(root_name) == C(root)).predicate(name=f"ldr.{root} = {root}")
    ]
    for j in tree.non_root_nodes():
        mine, theirs = leader_var(j), leader_var(tree.parent(j))
        parts.append(
            (V(mine) == V(theirs)).predicate(name=f"{mine} = {theirs}")
        )
    return all_of(parts, name="S(leader-election)")


def build_leader_election_design(tree: RootedTree) -> NonmaskingDesign:
    """The nonmasking leader-election design for ``tree``."""
    if len(tree) < 2:
        raise ValueError("leader election needs at least two nodes")
    domain = FiniteDomain(tree.nodes)
    variables = [Variable(leader_var(j), domain, process=j) for j in tree.nodes]
    closure = Program("leader-election-closure", variables, [])

    root = tree.root
    root_name = leader_var(root)
    # Symbolic predicates let the static analyzer discharge closure and
    # establishment obligations without enumerating the state space.
    root_constraint = Constraint(
        name=f"L.{root}",
        predicate=(V(root_name) == C(root)).predicate(
            name=f"ldr.{root} = {root}"
        ),
    )
    root_action = Action(
        f"claim.{root}",
        (~root_constraint.predicate).renamed(f"ldr.{root} != {root}"),
        Assignment({root_name: root}),
        reads=(root_name,),
        process=root,
    )
    constraints = [root_constraint]
    bindings = [ConvergenceBinding(constraint=root_constraint, action=root_action)]

    for j in tree.non_root_nodes():
        mine, theirs = leader_var(j), leader_var(tree.parent(j))
        constraint = Constraint(
            name=f"L.{j}",
            predicate=(V(mine) == V(theirs)).predicate(
                name=f"{mine} = {theirs}"
            ),
        )
        action = Action(
            f"adopt.{j}",
            (~constraint.predicate).renamed(f"{mine} != {theirs}"),
            Assignment({mine: V(theirs)}),
            reads=(mine, theirs),
            process=j,
        )
        constraints.append(constraint)
        bindings.append(ConvergenceBinding(constraint=constraint, action=action))

    candidate = CandidateTriple(
        program=closure,
        invariant=election_invariant(tree),
        constraints=tuple(constraints),
    )
    return NonmaskingDesign(
        name="leader-election",
        candidate=candidate,
        bindings=tuple(bindings),
        nodes=process_nodes(closure),
    )
