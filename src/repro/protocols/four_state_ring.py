"""Dijkstra's four-state machines on a bidirectional array (extension).

The third protocol of Dijkstra's 1974 self-stabilization paper — the
companion of the K-state ring the paper's Section 7.1 reproduces.
Machines ``0 .. n-1`` form a line; each holds a bit ``x.i`` and (for the
interior machines) a direction bit ``up.i``. The bottom machine behaves
as if ``up.0 = true`` and the top as if ``up.(n-1) = false``, constants
folded into the guards. Privileges:

- **bottom** — ``x.0 = x.1 and not up.1``: flip ``x.0`` (bounce the
  token upward);
- **top** — ``x.(n-1) != x.(n-2)``: copy (bounce it downward);
- **interior, upward** — ``x.i != x.(i-1)``: copy from below and set
  ``up.i`` (pass the token up);
- **interior, downward** — ``x.i = x.(i+1) and up.i and not up.(i+1)``:
  clear ``up.i`` (pass it down).

In legitimate states exactly one machine is privileged and the privilege
shuttles bottom → top → bottom; the program stabilizes from arbitrary
``x``/``up`` corruption using only **constant space per machine** —
unlike the K-state ring, whose counter must grow with the ring size.

Provenance note: these guards were reconstructed from memory and then
*validated by this library's own model checker* — closure of the
exactly-one-privilege predicate plus convergence under weak and unfair
daemons, exhaustively for n = 3..6 (see the protocol tests). That
workflow — write the rules, let the checker adjudicate — is the library
used as its own referee.
"""

from __future__ import annotations

from repro.core.actions import Action, Assignment
from repro.core.domains import BooleanDomain
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.core.variables import Variable

__all__ = [
    "x_var",
    "up_var",
    "build_four_state_line",
    "four_state_invariant",
    "privileged_machines",
]


def x_var(i: int) -> str:
    """Machine ``i``'s bit."""
    return f"x.{i}"


def up_var(i: int) -> str:
    """Interior machine ``i``'s direction bit."""
    return f"up.{i}"


def build_four_state_line(n: int) -> Program:
    """The four-state program on a line of ``n`` machines (``n >= 3``)."""
    if n < 3:
        raise ValueError("the four-state protocol needs at least 3 machines")

    variables: list[Variable] = []
    for i in range(n):
        variables.append(Variable(x_var(i), BooleanDomain(), process=i))
        if 0 < i < n - 1:
            variables.append(Variable(up_var(i), BooleanDomain(), process=i))

    def up_reader(i: int):
        """``up.i`` with the boundary constants folded in."""
        if i == 0:
            return lambda s: True
        if i == n - 1:
            return lambda s: False
        name = up_var(i)
        return lambda s: s[name]

    def up_support(i: int) -> tuple[str, ...]:
        return (up_var(i),) if 0 < i < n - 1 else ()

    actions: list[Action] = []

    bottom_reads = (x_var(0), x_var(1), *up_support(1))
    up1 = up_reader(1)
    actions.append(
        Action(
            "bounce.0",
            Predicate(
                lambda s: s[x_var(0)] == s[x_var(1)] and not up1(s),
                name="x.0 = x.1 and not up.1",
                support=bottom_reads,
            ),
            Assignment({x_var(0): lambda s: not s[x_var(0)]}),
            reads=bottom_reads,
            process=0,
        )
    )

    top, below = x_var(n - 1), x_var(n - 2)
    actions.append(
        Action(
            f"bounce.{n - 1}",
            Predicate(
                lambda s: s[top] != s[below],
                name=f"x.{n - 1} != x.{n - 2}",
                support=(top, below),
            ),
            Assignment({top: lambda s: s[below]}),
            reads=(top, below),
            process=n - 1,
        )
    )

    for i in range(1, n - 1):
        xi, xm, xp, ui = x_var(i), x_var(i - 1), x_var(i + 1), up_var(i)
        up_next = up_reader(i + 1)

        pass_up_reads = (xi, xm, ui)
        actions.append(
            Action(
                f"pass-up.{i}",
                Predicate(
                    lambda s, xi=xi, xm=xm: s[xi] != s[xm],
                    name=f"x.{i} != x.{i - 1}",
                    support=(xi, xm),
                ),
                Assignment({xi: lambda s, xm=xm: s[xm], ui: True}),
                reads=pass_up_reads,
                process=i,
            )
        )

        pass_down_reads = (xi, xp, ui, *up_support(i + 1))
        actions.append(
            Action(
                f"pass-down.{i}",
                Predicate(
                    lambda s, xi=xi, xp=xp, ui=ui, up_next=up_next: (
                        s[xi] == s[xp] and s[ui] and not up_next(s)
                    ),
                    name=f"x.{i} = x.{i + 1} and up.{i} and not up.{i + 1}",
                    support=pass_down_reads,
                ),
                Assignment({ui: False}),
                reads=pass_down_reads,
                process=i,
            )
        )

    return Program(f"four-state-line[{n}]", variables, actions)


def privileged_machines(program: Program, state: State) -> list[int]:
    """The machines with an enabled action (holding a privilege)."""
    found = []
    for action in program.enabled_actions(state):
        if action.process not in found:
            found.append(action.process)
    return sorted(found)


def four_state_invariant(program: Program) -> Predicate:
    """``S``: exactly one enabled action (one privilege) in the system.

    For the four-state protocol each machine has at most one enabled
    action at a time, so one enabled action is one privileged machine.
    """
    names = list(program.variables)
    return Predicate(
        lambda s: len(program.enabled_actions(s)) == 1,
        name="exactly one privilege",
        support=names,
    )
