"""Stabilizing tree coloring (extension protocol, Theorem 1).

Each node of a rooted tree holds a color from ``0 .. k-1``; the invariant
requires every non-root node to differ from its parent::

    S = (∀ non-root j :: color.j ≠ color.(P.j))

Each conjunct is one constraint, independently checkable and establishable
by node ``j`` (set ``color.j := color.(P.j) + 1 mod k``). The convergence
action for node ``j`` writes only ``j``'s color and reads only ``j``'s and
its parent's, so the constraint graph is the tree — an out-tree — and
Theorem 1 validates the design for any ``k ≥ 2``. There are no closure
actions: the colored tree is a *silent* stabilizing program (once ``S``
holds nothing is enabled).

This protocol demonstrates that the paper's method generalizes beyond its
three worked examples with zero extra proof effort: the designer picks a
local establishment statement, the graph shape does the rest.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.actions import Action, Assignment
from repro.core.candidate import CandidateTriple
from repro.core.constraints import Constraint, ConvergenceBinding
from repro.core.design import NonmaskingDesign
from repro.core.domains import ModularDomain
from repro.core.expr import C, V
from repro.core.predicates import Predicate, all_of
from repro.core.program import Program
from repro.core.variables import Variable
from repro.protocols.base import process_nodes
from repro.topology.tree import RootedTree

__all__ = [
    "color_var",
    "coloring_invariant",
    "build_coloring_design",
    "is_proper_coloring",
]


def color_var(j: Hashable) -> str:
    """The name of node ``j``'s color variable."""
    return f"color.{j}"


def _constraint(tree: RootedTree, j: Hashable) -> Constraint:
    parent = tree.parent(j)
    mine, theirs = color_var(j), color_var(parent)
    # Symbolic predicate: the static analyzer reads the comparison
    # directly instead of probing an opaque lambda.
    return Constraint(
        name=f"D.{j}",
        predicate=(V(mine) != V(theirs)).predicate(
            name=f"color.{j} != color.{parent}"
        ),
    )


def coloring_invariant(tree: RootedTree) -> Predicate:
    """``S``: every non-root node's color differs from its parent's."""
    return all_of(
        [_constraint(tree, j).predicate for j in tree.non_root_nodes()],
        name="S(coloring)",
    )


def is_proper_coloring(tree: RootedTree, state: object) -> bool:
    """Convenience wrapper around the invariant for examples and tests."""
    return bool(coloring_invariant(tree)(state))  # type: ignore[arg-type]


def build_coloring_design(tree: RootedTree, k: int = 2) -> NonmaskingDesign:
    """The nonmasking coloring design for ``tree`` with ``k`` colors.

    Args:
        tree: A rooted tree with at least two nodes.
        k: Number of colors; any ``k >= 2`` suffices on a tree.
    """
    if len(tree) < 2:
        raise ValueError("coloring needs at least two nodes")
    if k < 2:
        raise ValueError("need at least two colors")
    domain = ModularDomain(k)
    variables = [Variable(color_var(j), domain, process=j) for j in tree.nodes]
    closure = Program("coloring-closure", variables, [])

    constraints = []
    bindings = []
    for j in tree.non_root_nodes():
        parent = tree.parent(j)
        mine, theirs = color_var(j), color_var(parent)
        constraint = _constraint(tree, j)
        action = Action(
            f"recolor.{j}",
            (~constraint.predicate).renamed(f"color.{j} = color.{parent}"),
            Assignment({mine: (V(theirs) + C(1)) % C(k)}),
            reads=(mine, theirs),
            process=j,
        )
        constraints.append(constraint)
        bindings.append(ConvergenceBinding(constraint=constraint, action=action))

    candidate = CandidateTriple(
        program=closure,
        invariant=coloring_invariant(tree),
        constraints=tuple(constraints),
    )
    return NonmaskingDesign(
        name=f"coloring[k={k}]",
        candidate=candidate,
        bindings=tuple(bindings),
        nodes=process_nodes(closure),
    )
