"""The protocol library.

The three designs worked in the paper:

- :mod:`repro.protocols.three_constraint` — the x/y/z example of
  Sections 4 and 6 (out-tree, ordered self-looping, and oscillating
  designs).
- :mod:`repro.protocols.diffusing` — the stabilizing diffusing
  computation of Section 5.1 (Theorem 1).
- :mod:`repro.protocols.token_ring` — the stabilizing token ring of
  Section 7.1 (Theorem 3), plus Dijkstra's finite K-state variant.

Refinements and applications from the paper's own margins:

- :mod:`repro.protocols.mp_token_ring` — the message-passing token ring
  (Section 7.1's "exercise to the reader"), over lossy slot channels.
- :mod:`repro.protocols.reset` — distributed reset riding the diffusing
  wave (the first of Section 5.1's listed applications).

Extensions built with the same method or verified by the library:

- :mod:`repro.protocols.coloring` — tree coloring (Theorem 1).
- :mod:`repro.protocols.leader_election` — leader election (Theorem 2).
- :mod:`repro.protocols.spanning_tree` — BFS spanning tree (convergence
  stair, the paper's Section 7 refinement).
- :mod:`repro.protocols.matching` — Hsu–Huang maximal matching
  (model-checked; no theorem certificate applies).
- :mod:`repro.protocols.independent_set` — maximal independent set
  (model-checked).
- :mod:`repro.protocols.graph_coloring` — greedy graph coloring
  (central-daemon correct; the synchronous-oscillation showcase, E14).
- :mod:`repro.protocols.four_state_ring` — Dijkstra's four-state
  bidirectional line, reconstructed and validated by the model checker.
"""

from repro.protocols.base import process_nodes, variables_of_process
from repro.protocols.four_state_ring import (
    build_four_state_line,
    four_state_invariant,
    privileged_machines,
)
from repro.protocols.coloring import (
    build_coloring_design,
    coloring_invariant,
    is_proper_coloring,
)
from repro.protocols.diffusing import (
    GREEN,
    RED,
    all_green_state,
    build_diffusing_design,
    diffusing_invariant,
    wave_complete,
)
from repro.protocols.graph_coloring import (
    build_graph_coloring_program,
    conflicted_nodes,
    graph_coloring_invariant,
)
from repro.protocols.independent_set import (
    build_mis_program,
    members,
    mis_invariant,
)
from repro.protocols.leader_election import (
    build_leader_election_design,
    election_invariant,
)
from repro.protocols.mp_token_ring import (
    build_mp_token_ring,
    messages_in_flight,
    mp_ring_invariant,
)
from repro.protocols.reset import build_reset_program, reset_target
from repro.protocols.matching import (
    build_matching_program,
    matched_pairs,
    matching_invariant,
)
from repro.protocols.spanning_tree import (
    build_spanning_tree_program,
    derived_parent,
    spanning_tree_invariant,
    spanning_tree_stair,
)
from repro.protocols.three_constraint import (
    build_ordered_design,
    build_oscillating_design,
    build_out_tree_design,
    xyz_invariant,
)
from repro.protocols.token_ring import (
    build_dijkstra_ring,
    build_token_ring_design,
    exactly_one_privilege,
    privileged_nodes,
    ring_invariant,
)

__all__ = [
    "GREEN",
    "RED",
    "all_green_state",
    "build_coloring_design",
    "build_diffusing_design",
    "build_dijkstra_ring",
    "build_four_state_line",
    "build_graph_coloring_program",
    "four_state_invariant",
    "privileged_machines",
    "conflicted_nodes",
    "graph_coloring_invariant",
    "build_leader_election_design",
    "build_matching_program",
    "build_mis_program",
    "build_mp_token_ring",
    "build_ordered_design",
    "build_oscillating_design",
    "build_out_tree_design",
    "build_reset_program",
    "build_spanning_tree_program",
    "build_token_ring_design",
    "coloring_invariant",
    "derived_parent",
    "diffusing_invariant",
    "election_invariant",
    "exactly_one_privilege",
    "is_proper_coloring",
    "matched_pairs",
    "matching_invariant",
    "members",
    "messages_in_flight",
    "mis_invariant",
    "mp_ring_invariant",
    "privileged_nodes",
    "reset_target",
    "process_nodes",
    "ring_invariant",
    "spanning_tree_invariant",
    "spanning_tree_stair",
    "variables_of_process",
    "wave_complete",
    "xyz_invariant",
]
