"""Stabilizing maximal matching (Hsu–Huang 1992; extension protocol).

Each node of an undirected graph holds a pointer ``p.j`` to a neighbor or
``None``. Three rules per node, executed under a central daemon:

- **accept** — unmatched and some neighbor proposes to me: point back.
- **propose** — unmatched, nobody proposes to me, and some neighbor is
  unmatched: point at one.
- **retract** — I point at a neighbor who points at some third node:
  withdraw.

The invariant: pointers are symmetric (``p.j = k ⇒ p.k = j``) and the
matching is maximal (no edge joins two unmatched nodes). Under the
invariant every rule is disabled — the protocol is silent.

The constraint structure here is genuinely cyclic and not locally
repairable in the paper's one-action-per-constraint sense, so no theorem
certificate is attached; the protocol demonstrates the *verification*
side of the library instead: exhaustive model checking on small graphs
(experiment E9) and simulation at scale. Hsu and Huang's variant-function
proof guarantees convergence under any central daemon, which the model
checker confirms with ``fairness="none"``.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.actions import Action, Assignment
from repro.core.domains import FiniteDomain
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.core.variables import Variable
from repro.topology.graph import Graph

__all__ = [
    "pointer_var",
    "build_matching_program",
    "matching_invariant",
    "matched_pairs",
]


def pointer_var(j: Hashable) -> str:
    """The name of node ``j``'s pointer variable."""
    return f"p.{j}"


def _sorted_neighbors(graph: Graph, j: Hashable) -> list[Hashable]:
    return sorted(graph.neighbors(j), key=str)


def build_matching_program(graph: Graph) -> Program:
    """The Hsu–Huang matching program on ``graph``."""
    if len(graph) < 2:
        raise ValueError("matching needs at least two nodes")
    variables = [
        Variable(
            pointer_var(j),
            FiniteDomain([None, *_sorted_neighbors(graph, j)]),
            process=j,
        )
        for j in graph.nodes
    ]

    actions: list[Action] = []
    for j in graph.nodes:
        mine = pointer_var(j)
        neighbors = _sorted_neighbors(graph, j)
        neighbor_names = [pointer_var(k) for k in neighbors]
        reads = [mine, *neighbor_names]

        def proposers(s: State, j=j, neighbors=neighbors) -> list[Hashable]:
            return [k for k in neighbors if s[pointer_var(k)] == j]

        def unmatched_neighbors(s: State, neighbors=neighbors) -> list[Hashable]:
            return [k for k in neighbors if s[pointer_var(k)] is None]

        actions.append(
            Action(
                f"accept.{j}",
                Predicate(
                    lambda s, mine=mine, proposers=proposers: s[mine] is None
                    and bool(proposers(s)),
                    name=f"p.{j} = None and some neighbor points at {j}",
                    support=reads,
                ),
                Assignment({mine: lambda s, proposers=proposers: proposers(s)[0]}),
                reads=reads,
                process=j,
            )
        )
        actions.append(
            Action(
                f"propose.{j}",
                Predicate(
                    lambda s, mine=mine, proposers=proposers,
                    unmatched_neighbors=unmatched_neighbors: s[mine] is None
                    and not proposers(s)
                    and bool(unmatched_neighbors(s)),
                    name=(
                        f"p.{j} = None, nobody points at {j}, some neighbor "
                        "unmatched"
                    ),
                    support=reads,
                ),
                Assignment(
                    {
                        mine: lambda s, unmatched_neighbors=unmatched_neighbors: (
                            unmatched_neighbors(s)[0]
                        )
                    }
                ),
                reads=reads,
                process=j,
            )
        )

        def points_at_taken(s: State, mine=mine, j=j) -> bool:
            k = s[mine]
            if k is None:
                return False
            other = s[pointer_var(k)]
            return other is not None and other != j

        actions.append(
            Action(
                f"retract.{j}",
                Predicate(
                    points_at_taken,
                    name=f"p.{j} points at a neighbor engaged elsewhere",
                    support=reads,
                ),
                Assignment({mine: None}),
                reads=reads,
                process=j,
            )
        )
    return Program("hsu-huang-matching", variables, actions)


def matching_invariant(graph: Graph) -> Predicate:
    """``S``: pointers symmetric and the matching maximal."""
    support = [pointer_var(j) for j in graph.nodes]
    edges = list(graph.edges())

    def holds(s: State) -> bool:
        for j in graph.nodes:
            k = s[pointer_var(j)]
            if k is not None and s[pointer_var(k)] != j:
                return False
        for u, v in edges:
            if s[pointer_var(u)] is None and s[pointer_var(v)] is None:
                return False
        return True

    return Predicate(holds, name="S(matching)", support=support)


def matched_pairs(graph: Graph, state: State) -> set[frozenset[Hashable]]:
    """The mutually pointing pairs in ``state``."""
    pairs: set[frozenset[Hashable]] = set()
    for j in graph.nodes:
        k = state[pointer_var(j)]
        if k is not None and state[pointer_var(k)] == j:
            pairs.add(frozenset((j, k)))
    return pairs
