"""The protocol library as a registry of verification cases.

Benchmarks E7/E9, the CLI batch command and the parallel verification
pool all need the same thing: a *named, picklable* way to rebuild a
small protocol instance. This module provides it — every case has a
name, a parametric size, and a top-level :func:`build_case` entry point
that :class:`~repro.verification.parallel.VerificationTask` can
reference as ``"repro.protocols.library:build_case"`` and rebuild inside
a worker process.

Default sizes reproduce exactly the instances of benchmark E7, so the
historical experiment tables stay comparable.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass
from functools import lru_cache

from typing import TYPE_CHECKING

from repro.core.errors import ValidationError
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.verification.parallel import VerificationTask

if TYPE_CHECKING:
    from repro.core.design import NonmaskingDesign

__all__ = [
    "CASES",
    "VerificationCase",
    "build_case",
    "build_case_design",
    "case_names",
    "library_tasks",
]


@dataclass(frozen=True)
class VerificationCase:
    """One registered instance family: builder plus default size.

    ``build_design`` is present for cases whose protocol module exposes a
    full :class:`~repro.core.design.NonmaskingDesign` (candidate triple,
    bindings, node partition); the linter uses it to run the
    constraint-graph and theorem-precondition passes in addition to the
    program-level ones. Cases built from a bare program/invariant pair
    leave it ``None`` and are linted at the program level only.
    """

    name: str
    description: str
    build: Callable[[int], tuple[Program, Predicate]]
    default_size: int
    build_design: Callable[[int], "NonmaskingDesign"] | None = None


def _diffusing_chain(size: int):
    from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant
    from repro.topology import chain_tree

    tree = chain_tree(size)
    return build_diffusing_design(tree).program, diffusing_invariant(tree)


# Design builders are deterministic and designs immutable, so instances
# are shared across callers: the verify/certify caches, the static
# discharger's proof caches and the serve daemon all key on object
# identity somewhere, and rebuilding the same (family, size) would
# defeat every one of them.
@lru_cache(maxsize=64)
def _diffusing_chain_design(size: int):
    from repro.protocols.diffusing import build_diffusing_design
    from repro.topology import chain_tree

    return build_diffusing_design(chain_tree(size))


def _diffusing_star(size: int):
    from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant
    from repro.topology import star_tree

    tree = star_tree(size)
    return build_diffusing_design(tree).program, diffusing_invariant(tree)


@lru_cache(maxsize=64)
def _diffusing_star_design(size: int):
    from repro.protocols.diffusing import build_diffusing_design
    from repro.topology import star_tree

    return build_diffusing_design(star_tree(size))


def _dijkstra_ring(size: int):
    from repro.protocols.token_ring import build_dijkstra_ring

    return build_dijkstra_ring(size, k=size)


def _coloring_chain(size: int):
    from repro.protocols.coloring import build_coloring_design, coloring_invariant
    from repro.topology import chain_tree

    tree = chain_tree(size)
    return build_coloring_design(tree, k=3).program, coloring_invariant(tree)


@lru_cache(maxsize=64)
def _coloring_chain_design(size: int):
    from repro.protocols.coloring import build_coloring_design
    from repro.topology import chain_tree

    return build_coloring_design(chain_tree(size), k=3)


def _leader_election_star(size: int):
    from repro.protocols.leader_election import (
        build_leader_election_design,
        election_invariant,
    )
    from repro.topology import star_tree

    tree = star_tree(size)
    return build_leader_election_design(tree).program, election_invariant(tree)


@lru_cache(maxsize=64)
def _leader_election_star_design(size: int):
    from repro.protocols.leader_election import build_leader_election_design
    from repro.topology import star_tree

    return build_leader_election_design(star_tree(size))


def _spanning_tree_path(size: int):
    from repro.protocols.spanning_tree import (
        build_spanning_tree_program,
        spanning_tree_invariant,
    )
    from repro.topology import path_graph

    graph = path_graph(size)
    return build_spanning_tree_program(graph, 0), spanning_tree_invariant(graph, 0)


def _matching_cycle(size: int):
    from repro.protocols.matching import build_matching_program, matching_invariant
    from repro.topology import cycle_graph

    graph = cycle_graph(size)
    return build_matching_program(graph), matching_invariant(graph)


def _mis_cycle(size: int):
    from repro.protocols.independent_set import build_mis_program, mis_invariant
    from repro.topology import cycle_graph

    graph = cycle_graph(size)
    return build_mis_program(graph), mis_invariant(graph)


def _mp_token_ring(size: int):
    from repro.protocols.mp_token_ring import build_mp_token_ring

    return build_mp_token_ring(size, size)


def _reset_chain(size: int):
    from repro.protocols.reset import build_reset_program, reset_target
    from repro.topology import chain_tree

    tree = chain_tree(size)
    return build_reset_program(tree, app_values=2), reset_target(tree)


def _graph_coloring_cycle(size: int):
    from repro.protocols.graph_coloring import (
        build_graph_coloring_program,
        graph_coloring_invariant,
    )
    from repro.topology import cycle_graph

    graph = cycle_graph(size)
    return build_graph_coloring_program(graph), graph_coloring_invariant(graph)


def _four_state_line(size: int):
    from repro.protocols.four_state_ring import (
        build_four_state_line,
        four_state_invariant,
    )

    program = build_four_state_line(size)
    return program, four_state_invariant(program)


CASES: dict[str, VerificationCase] = {
    case.name: case
    for case in [
        VerificationCase(
            "diffusing-chain",
            "diffusing computation on a chain",
            _diffusing_chain,
            4,
            build_design=_diffusing_chain_design,
        ),
        VerificationCase(
            "diffusing-star",
            "diffusing computation on a star",
            _diffusing_star,
            3,
            build_design=_diffusing_star_design,
        ),
        VerificationCase(
            "dijkstra-ring", "Dijkstra K-state token ring (K = size)", _dijkstra_ring, 5
        ),
        VerificationCase(
            "coloring-chain",
            "tree coloring on a chain (k = 3)",
            _coloring_chain,
            4,
            build_design=_coloring_chain_design,
        ),
        VerificationCase(
            "leader-election-star",
            "leader election on a star",
            _leader_election_star,
            3,
            build_design=_leader_election_star_design,
        ),
        VerificationCase(
            "spanning-tree-path", "BFS spanning tree on a path", _spanning_tree_path, 4
        ),
        VerificationCase(
            "matching-cycle", "Hsu-Huang matching on a cycle", _matching_cycle, 4
        ),
        VerificationCase(
            "mis-cycle", "maximal independent set on a cycle", _mis_cycle, 5
        ),
        VerificationCase(
            "mp-token-ring",
            "message-passing token ring (K = size)",
            _mp_token_ring,
            3,
        ),
        VerificationCase(
            "reset-chain", "distributed reset on a chain", _reset_chain, 3
        ),
        VerificationCase(
            "graph-coloring-cycle",
            "greedy graph coloring on a cycle",
            _graph_coloring_cycle,
            4,
        ),
        VerificationCase(
            "four-state-line", "Dijkstra's four-state line", _four_state_line, 5
        ),
    ]
}


def case_names() -> list[str]:
    """Every registered case name, in registration order."""
    return list(CASES)


def build_case(name: str, size: int | None = None) -> tuple[Program, Predicate]:
    """Build the instance of case ``name`` at ``size`` (default per case).

    This is the picklable batch-job entry point: reference it as
    ``builder="repro.protocols.library:build_case", args=(name, size)``.
    """
    try:
        case = CASES[name]
    except KeyError:
        known = ", ".join(CASES)
        raise ValidationError(
            f"unknown verification case {name!r}; known cases: {known}"
        ) from None
    return case.build(size if size is not None else case.default_size)


def build_case_design(name: str, size: int | None = None) -> "NonmaskingDesign":
    """Build the full design of case ``name``, for design-aware workers.

    The picklable counterpart of :func:`build_case` for cases that
    register a design: reference it as
    ``design_builder="repro.protocols.library:build_case_design"`` on a
    :class:`~repro.verification.parallel.VerificationTask` to let the
    worker certify compositionally.
    """
    try:
        case = CASES[name]
    except KeyError:
        known = ", ".join(CASES)
        raise ValidationError(
            f"unknown verification case {name!r}; known cases: {known}"
        ) from None
    if case.build_design is None:
        raise ValidationError(
            f"case {name!r} registers no design; only "
            f"{[n for n, c in CASES.items() if c.build_design is not None]} "
            "can be built as designs"
        )
    return case.build_design(size if size is not None else case.default_size)


def library_tasks(
    *,
    names: Iterable[str] | None = None,
    sizes: dict[str, int] | None = None,
    fairness: str = "weak",
    engine: str = "auto",
) -> list[VerificationTask]:
    """Verification tasks for the whole library (or the named subset)."""
    chosen = list(names) if names is not None else case_names()
    overrides = sizes or {}
    tasks = []
    for name in chosen:
        if name not in CASES:
            raise ValidationError(f"unknown verification case {name!r}")
        size = overrides.get(name, CASES[name].default_size)
        tasks.append(
            VerificationTask(
                case=f"{name} (n={size})",
                builder="repro.protocols.library:build_case",
                args=(name, size),
                fairness=fairness,
                engine=engine,
            )
        )
    return tasks
