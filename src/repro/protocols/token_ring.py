"""Stabilizing token rings (Section 7.1 of the paper; Dijkstra 1974).

``N+1`` nodes numbered ``0 .. N`` form a ring; the successor of ``j`` is
``j+1 mod N+1``. Each node holds an integer ``x.j``. Node 0 is privileged
when ``x.0 = x.N``; node ``j+1`` is privileged when ``x.j ≠ x.(j+1)``
(in the paper's invariant region this coincides with ``x.j > x.(j+1)``).
Exactly one node is privileged in every invariant state, each privileged
node eventually passes the privilege to its successor, and the program
tolerates faults that spontaneously make nodes privileged or
unprivileged (arbitrary corruption of the ``x`` values).

Two formulations are provided:

- :func:`build_token_ring_design` — the paper's formulation over
  *unbounded* integers, packaged as a complete Theorem 3 design: the
  invariant ``S = (∀j : x.j ≥ x.(j+1)) ∧ (x.0 = x.N ∨ x.0 = x.N + 1)``
  is decomposed into two layers of constraints, layer 0 the inequalities
  ``x.j ≥ x.(j+1)`` and layer 1 the equalities ``x.j = x.(j+1)``, both
  served by the single merged action ``x.j ≠ x.(j+1) -> x.(j+1) := x.j``.
  Unbounded domains cannot be model-checked exhaustively, but all of
  Theorem 3's *local* obligations are discharged exhaustively over a
  finite window of states (preservation/establishment only evaluate
  predicates on successor states, which may lie outside the window).
- :func:`build_dijkstra_ring` — Dijkstra's finite K-state variant
  (``x.j ∈ 0..K-1``, node 0 increments modulo K), the classic concrete
  protocol. Its full state space is finite, so single-privilege closure
  and convergence are verified by exhaustive model checking, including
  the minimal-K sweep of experiment E4.
"""

from __future__ import annotations

import itertools

from repro.core.actions import Action, Assignment
from repro.core.candidate import CandidateTriple
from repro.core.constraints import Constraint, ConvergenceBinding
from repro.core.design import NonmaskingDesign
from repro.core.domains import IntegerDomain, ModularDomain
from repro.core.predicates import Predicate, count_of
from repro.core.program import Program
from repro.core.state import State
from repro.core.variables import Variable
from repro.protocols.base import process_nodes
from repro.topology.ring import Ring

__all__ = [
    "x_var",
    "ring_invariant",
    "privileged_nodes",
    "privilege_predicate",
    "exactly_one_privilege",
    "build_token_ring_design",
    "build_dijkstra_ring",
    "window_states",
]


def x_var(j: int) -> str:
    """The name of node ``j``'s counter variable, ``x.j``."""
    return f"x.{j}"


def privileged_nodes(ring: Ring, state: State) -> list[int]:
    """The nodes currently holding a privilege.

    Node 0 is privileged iff ``x.0 = x.N``; node ``j+1`` iff
    ``x.j ≠ x.(j+1)``.
    """
    last = ring.last
    privileged = []
    if state[x_var(0)] == state[x_var(last)]:
        privileged.append(0)
    for j in range(last):
        if state[x_var(j)] != state[x_var(j + 1)]:
            privileged.append(j + 1)
    return privileged


def privilege_predicate(ring: Ring, node: int) -> Predicate:
    """The predicate "node ``node`` holds a privilege".

    Each privilege tests exactly two adjacent counters, so these are the
    small-support building blocks of the ring's specification.
    """
    if node == 0:
        a, b = x_var(0), x_var(ring.last)
        return Predicate(
            lambda s: s[a] == s[b], name=f"{a} = {b}", support=(a, b)
        )
    a, b = x_var(node - 1), x_var(node)
    return Predicate(lambda s: s[a] != s[b], name=f"{a} != {b}", support=(a, b))


def exactly_one_privilege(ring: Ring) -> Predicate:
    """The specification predicate: exactly one node is privileged.

    Built as a counting combinator over the per-node privilege
    predicates, so the two-variable support of each privilege stays
    visible to structural analyses. Extensionally identical to counting
    :func:`privileged_nodes`.
    """
    return count_of(
        [privilege_predicate(ring, node) for node in ring.nodes],
        1,
        name="exactly one privileged node",
    )


def ring_invariant(ring: Ring) -> Predicate:
    """The paper's invariant over unbounded integers.

    ``S = (∀j < N : x.j ≥ x.(j+1)) ∧ (x.0 = x.N ∨ x.0 = x.N + 1)``:
    the ``x`` values are non-increasing along the path ``0 .. N`` with at
    most one unit decrease.
    """
    last = ring.last
    names = [x_var(j) for j in ring.nodes]

    def holds(s: State) -> bool:
        if any(s[x_var(j)] < s[x_var(j + 1)] for j in range(last)):
            return False
        return s[x_var(0)] == s[x_var(last)] or s[x_var(0)] == s[x_var(last)] + 1

    return Predicate(holds, name="S(token-ring)", support=names)


def _geq_constraint(j: int) -> Constraint:
    a, b = x_var(j), x_var(j + 1)
    return Constraint(
        name=f"geq.{j}",
        predicate=Predicate(
            lambda s: s[a] >= s[b], name=f"x.{j} >= x.{j + 1}", support=(a, b)
        ),
    )


def _eq_constraint(j: int) -> Constraint:
    a, b = x_var(j), x_var(j + 1)
    return Constraint(
        name=f"eq.{j}",
        predicate=Predicate(
            lambda s: s[a] == s[b], name=f"x.{j} = x.{j + 1}", support=(a, b)
        ),
    )


def _merged_pass_action(j: int) -> Action:
    """``x.j ≠ x.(j+1) -> x.(j+1) := x.j`` — the paper's combined action."""
    a, b = x_var(j), x_var(j + 1)
    return Action(
        f"pass.{j + 1}",
        Predicate(lambda s: s[a] != s[b], name=f"x.{j} != x.{j + 1}", support=(a, b)),
        Assignment({b: lambda s: s[a]}),
        reads=(a, b),
        process=j + 1,
    )


def build_token_ring_design(n_nodes: int, *, sample_hi: int = 16) -> NonmaskingDesign:
    """The paper's token-ring design over unbounded integers.

    Args:
        n_nodes: Total number of ring nodes (the paper's ``N+1``); at
            least 2.
        sample_hi: Upper end of the sampling window used when drawing
            random (corrupted) states for simulation.

    Returns:
        A two-layer Theorem 3 design. Its deployed ``program`` is exactly
        the paper's final listing: node 0's increment action plus one
        merged pass/convergence action per other node.
    """
    if n_nodes < 2:
        raise ValueError("a token ring needs at least 2 nodes")
    ring = Ring(n_nodes)
    last = ring.last
    domain = IntegerDomain(sample_lo=0, sample_hi=sample_hi)
    variables = [Variable(x_var(j), domain, process=j) for j in ring.nodes]

    x0, xn = x_var(0), x_var(last)
    initiate = Action(
        "initiate",
        Predicate(lambda s: s[x0] == s[xn], name="x.0 = x.N", support=(x0, xn)),
        Assignment({x0: lambda s: s[x0] + 1}),
        reads=(x0, xn),
        process=0,
    )
    closure_passes = []
    for j in range(last):
        a, b = x_var(j), x_var(j + 1)
        closure_passes.append(
            Action(
                f"pass.{j + 1}",
                Predicate(
                    lambda s, a=a, b=b: s[a] > s[b],
                    name=f"x.{j} > x.{j + 1}",
                    support=(a, b),
                ),
                Assignment({b: lambda s, a=a: s[a]}),
                reads=(a, b),
                process=j + 1,
            )
        )
    closure = Program("token-ring-closure", variables, [initiate, *closure_passes])

    geq = [_geq_constraint(j) for j in range(last)]
    eq = [_eq_constraint(j) for j in range(last)]
    candidate = CandidateTriple(
        program=closure,
        invariant=ring_invariant(ring),
        constraints=tuple(geq) + tuple(eq),
    )

    merged = [_merged_pass_action(j) for j in range(last)]
    layer0 = [
        ConvergenceBinding(constraint=geq[j], action=merged[j]) for j in range(last)
    ]
    layer1 = [
        ConvergenceBinding(constraint=eq[j], action=merged[j]) for j in range(last)
    ]
    return NonmaskingDesign(
        name=f"token-ring[{n_nodes}]",
        candidate=candidate,
        bindings=tuple(layer0) + tuple(layer1),
        nodes=process_nodes(closure),
        layers=(tuple(layer0), tuple(layer1)),
    )


def window_states(n_nodes: int, lo: int, hi: int) -> list[State]:
    """All states with every ``x.j`` in ``[lo, hi]``.

    The finite window over which the unbounded design's Theorem 3
    obligations are discharged exhaustively. A window of width ≥ 3
    already exhibits every ordering pattern of adjacent counters that the
    constraints can distinguish.
    """
    names = [x_var(j) for j in range(n_nodes)]
    values = range(lo, hi + 1)
    return [
        State(dict(zip(names, combo)))
        for combo in itertools.product(values, repeat=n_nodes)
    ]


def build_dijkstra_ring(n_nodes: int, k: int) -> tuple[Program, Predicate]:
    """Dijkstra's K-state token ring (finite domains).

    Args:
        n_nodes: Total ring size (the paper's ``N+1``); at least 2.
        k: Number of counter states per node. Stabilization from
            arbitrary states requires ``k >= n_nodes`` (experiment E4
            sweeps this empirically).

    Returns:
        The program and its specification predicate (exactly one
        privileged node).
    """
    if n_nodes < 2:
        raise ValueError("a token ring needs at least 2 nodes")
    if k < 2:
        raise ValueError("need at least 2 counter states")
    ring = Ring(n_nodes)
    last = ring.last
    domain = ModularDomain(k)
    variables = [Variable(x_var(j), domain, process=j) for j in ring.nodes]

    x0, xn = x_var(0), x_var(last)
    actions = [
        Action(
            "initiate",
            Predicate(lambda s: s[x0] == s[xn], name="x.0 = x.N", support=(x0, xn)),
            Assignment({x0: lambda s: (s[x0] + 1) % k}),
            reads=(x0, xn),
            process=0,
        )
    ]
    for j in range(last):
        a, b = x_var(j), x_var(j + 1)
        actions.append(
            Action(
                f"pass.{j + 1}",
                Predicate(
                    lambda s, a=a, b=b: s[a] != s[b],
                    name=f"x.{j} != x.{j + 1}",
                    support=(a, b),
                ),
                Assignment({b: lambda s, a=a: s[a]}),
                reads=(a, b),
                process=j + 1,
            )
        )
    program = Program(f"dijkstra-ring[{n_nodes},K={k}]", variables, actions)
    return program, exactly_one_privilege(ring)
