"""Stabilizing greedy coloring of arbitrary graphs (extension protocol).

Each node of an undirected graph holds a color in ``0 .. k-1``; a node in
conflict with some neighbor recolors itself to the *smallest free* color::

    exists neighbor with my color  ->  color.j := min(colors unused by neighbors)

With ``k >= max degree + 1`` a free color always exists, and the protocol
converges under **any central daemon** with no fairness assumption: a
move leaves the mover conflict-free and removes conflicts only, so the
number of conflicted nodes strictly decreases — a textbook variant
function (Section 8's preferred proof shape).

Under the **synchronous daemon** the protocol is the canonical failure
case of daemon strengthening: two adjacent same-colored nodes compute the
same smallest free color and move *together*, staying in conflict — an
oscillation the synchronous checker (experiment E14) exhibits on any
graph with a symmetric conflicted pair. This is why the distributed
graph-coloring literature adds randomization or locking; the tree
variant (:mod:`repro.protocols.coloring`) avoids it because a child's
parent never moves.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.actions import Action, Assignment
from repro.core.domains import ModularDomain
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.core.variables import Variable
from repro.topology.graph import Graph

__all__ = [
    "color_var",
    "build_graph_coloring_program",
    "graph_coloring_invariant",
    "conflicted_nodes",
]


def color_var(j: Hashable) -> str:
    """Node ``j``'s color variable."""
    return f"gc.{j}"


def build_graph_coloring_program(graph: Graph, k: int | None = None) -> Program:
    """The greedy coloring program on ``graph``.

    Args:
        graph: Any undirected graph.
        k: Number of colors; defaults to ``max degree + 1`` (the smallest
            bound guaranteeing a free color always exists).
    """
    if len(graph) < 1:
        raise ValueError("need at least one node")
    colors = k if k is not None else graph.max_degree() + 1
    if colors < graph.max_degree() + 1:
        raise ValueError(
            f"need at least {graph.max_degree() + 1} colors for max degree "
            f"{graph.max_degree()}"
        )
    domain = ModularDomain(colors)
    variables = [Variable(color_var(j), domain, process=j) for j in graph.nodes]

    actions: list[Action] = []
    for j in graph.nodes:
        mine = color_var(j)
        neighbor_names = [color_var(n) for n in graph.neighbors(j)]
        reads = [mine, *neighbor_names]

        def in_conflict(s: State, mine=mine, neighbor_names=neighbor_names) -> bool:
            return any(s[name] == s[mine] for name in neighbor_names)

        def smallest_free(s: State, neighbor_names=neighbor_names,
                          colors=colors) -> int:
            used = {s[name] for name in neighbor_names}
            for candidate in range(colors):
                if candidate not in used:
                    return candidate
            raise AssertionError("no free color despite k >= degree + 1")

        actions.append(
            Action(
                f"recolor.{j}",
                Predicate(
                    in_conflict,
                    name=f"node {j} shares a color with a neighbor",
                    support=reads,
                ),
                Assignment({mine: smallest_free}),
                reads=reads,
                process=j,
            )
        )
    return Program(f"greedy-coloring[k={colors}]", variables, actions)


def graph_coloring_invariant(graph: Graph) -> Predicate:
    """``S``: a proper coloring — no edge joins equal colors."""
    support = [color_var(j) for j in graph.nodes]
    edges = list(graph.edges())
    return Predicate(
        lambda s: all(s[color_var(u)] != s[color_var(v)] for u, v in edges),
        name="S(graph-coloring)",
        support=support,
    )


def conflicted_nodes(graph: Graph, state: State) -> set[Hashable]:
    """Nodes currently sharing a color with some neighbor."""
    return {
        j
        for j in graph.nodes
        if any(state[color_var(j)] == state[color_var(n)] for n in graph.neighbors(j))
    }
