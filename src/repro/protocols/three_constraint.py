"""The paper's three-variable running example (Sections 4 and 6).

Three integer variables ``x``, ``y``, ``z`` with the invariant
``S = (x ≠ y) ∧ (x ≤ z)``. The example illustrates how the *choice of
convergence statement* shapes the constraint graph and thereby which
theorem (if any) validates the design:

- :func:`build_out_tree_design` (Section 4): fix ``x = y`` by changing
  ``y`` and ``x > z`` by changing ``z``. Both edges leave the ``x`` node,
  the graph is an out-tree, Theorem 1 applies.
- :func:`build_ordered_design` (Section 6, second example): fix ``x = y``
  by *decreasing* ``x`` and ``x > z`` by lowering ``x`` to ``z``. Both
  edges target the ``x`` node (self-looping graph); the linear order
  ``[x ≤ z, x ≠ y]`` exists because decreasing ``x`` preserves
  ``x ≤ z``, so Theorem 2 applies.
- :func:`build_oscillating_design` (Section 6, first example): fix
  ``x = y`` by *increasing* ``x``. No linear order exists — each action
  can violate the other's constraint — Theorem 2's conditions fail, and
  the program really can oscillate forever (experiments E1/E10 exhibit
  the cycle by model checking).

The variables use unbounded integer domains; the designs converge within
a couple of steps from any state, so model checking works over the
reachability closure of a finite window (:func:`window_states` plus
:func:`repro.verification.explorer.explore`).
"""

from __future__ import annotations

import itertools

from repro.core.actions import Action, Assignment
from repro.core.candidate import CandidateTriple
from repro.core.constraints import Constraint, ConvergenceBinding
from repro.core.design import NonmaskingDesign
from repro.core.constraint_graph import GraphNode
from repro.core.domains import IntegerDomain
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.core.variables import Variable

__all__ = [
    "distinct_constraint",
    "bounded_constraint",
    "xyz_invariant",
    "xyz_nodes",
    "build_out_tree_design",
    "build_ordered_design",
    "build_oscillating_design",
    "window_states",
]


def _variables(bound: int) -> list[Variable]:
    domain = IntegerDomain(sample_lo=-bound, sample_hi=bound)
    return [
        Variable("x", domain, process="x"),
        Variable("y", domain, process="y"),
        Variable("z", domain, process="z"),
    ]


def distinct_constraint() -> Constraint:
    """``c1: x ≠ y``."""
    return Constraint(
        name="c1",
        predicate=Predicate(
            lambda s: s["x"] != s["y"], name="x != y", support=("x", "y")
        ),
    )


def bounded_constraint() -> Constraint:
    """``c2: x ≤ z``."""
    return Constraint(
        name="c2",
        predicate=Predicate(
            lambda s: s["x"] <= s["z"], name="x <= z", support=("x", "z")
        ),
    )


def xyz_invariant() -> Predicate:
    """``S = (x ≠ y) ∧ (x ≤ z)``."""
    return Predicate(
        lambda s: s["x"] != s["y"] and s["x"] <= s["z"],
        name="S(xyz)",
        support=("x", "y", "z"),
    )


def xyz_nodes() -> list[GraphNode]:
    """One constraint-graph node per variable."""
    return [
        GraphNode("x", frozenset({"x"})),
        GraphNode("y", frozenset({"y"})),
        GraphNode("z", frozenset({"z"})),
    ]


def _design(name: str, bound: int, bindings: list[ConvergenceBinding]) -> NonmaskingDesign:
    closure = Program(f"{name}-closure", _variables(bound), [])
    candidate = CandidateTriple(
        program=closure,
        invariant=xyz_invariant(),
        constraints=tuple(binding.constraint for binding in bindings),
    )
    return NonmaskingDesign(
        name=name,
        candidate=candidate,
        bindings=tuple(bindings),
        nodes=xyz_nodes(),
    )


def build_out_tree_design(bound: int = 4) -> NonmaskingDesign:
    """Section 4's design: change ``y`` for ``c1``, change ``z`` for ``c2``."""
    fix_distinct = Action(
        "lower-y",
        Predicate(lambda s: s["x"] == s["y"], name="x = y", support=("x", "y")),
        Assignment({"y": lambda s: s["x"] - 1}),
        reads=("x", "y"),
        process="y",
    )
    fix_bound = Action(
        "raise-z",
        Predicate(lambda s: s["x"] > s["z"], name="x > z", support=("x", "z")),
        Assignment({"z": lambda s: s["x"]}),
        reads=("x", "z"),
        process="z",
    )
    return _design(
        "xyz-out-tree",
        bound,
        [
            ConvergenceBinding(constraint=distinct_constraint(), action=fix_distinct),
            ConvergenceBinding(constraint=bounded_constraint(), action=fix_bound),
        ],
    )


def build_ordered_design(bound: int = 4) -> NonmaskingDesign:
    """Section 6's good design: both actions write ``x``; an order exists.

    Decreasing ``x`` (for ``c1``) preserves ``x ≤ z``, so the linear
    order ``[c2's action, c1's action]`` satisfies Theorem 2.
    """
    fix_distinct = Action(
        "lower-x",
        Predicate(lambda s: s["x"] == s["y"], name="x = y", support=("x", "y")),
        Assignment({"x": lambda s: s["x"] - 1}),
        reads=("x", "y"),
        process="x",
    )
    fix_bound = Action(
        "clamp-x",
        Predicate(lambda s: s["x"] > s["z"], name="x > z", support=("x", "z")),
        Assignment({"x": lambda s: s["z"]}),
        reads=("x", "z"),
        process="x",
    )
    return _design(
        "xyz-ordered",
        bound,
        [
            ConvergenceBinding(constraint=distinct_constraint(), action=fix_distinct),
            ConvergenceBinding(constraint=bounded_constraint(), action=fix_bound),
        ],
    )


def build_oscillating_design(bound: int = 4) -> NonmaskingDesign:
    """Section 6's bad design: raising ``x`` for ``c1`` can violate ``c2``,
    clamping ``x`` for ``c2`` can violate ``c1`` — no linear order exists
    and the two actions can alternate forever."""
    fix_distinct = Action(
        "raise-x",
        Predicate(lambda s: s["x"] == s["y"], name="x = y", support=("x", "y")),
        Assignment({"x": lambda s: s["x"] + 1}),
        reads=("x", "y"),
        process="x",
    )
    fix_bound = Action(
        "clamp-x",
        Predicate(lambda s: s["x"] > s["z"], name="x > z", support=("x", "z")),
        Assignment({"x": lambda s: s["z"]}),
        reads=("x", "z"),
        process="x",
    )
    return _design(
        "xyz-oscillating",
        bound,
        [
            ConvergenceBinding(constraint=distinct_constraint(), action=fix_distinct),
            ConvergenceBinding(constraint=bounded_constraint(), action=fix_bound),
        ],
    )


def window_states(bound: int) -> list[State]:
    """All states with ``x, y, z ∈ [-bound, bound]``.

    Model checks run over the reachability closure of this window (the
    designs move values at most one unit outside it before quiescing).
    """
    values = range(-bound, bound + 1)
    return [
        State({"x": x, "y": y, "z": z})
        for x, y, z in itertools.product(values, repeat=3)
    ]
