"""Shared protocol scaffolding.

Every protocol module exposes a builder returning either a
:class:`~repro.core.design.NonmaskingDesign` (when the protocol was
derived with the paper's method and carries a theorem certificate) or a
plain :class:`~repro.core.program.Program` plus its invariant (for
extension protocols verified by model checking or convergence stairs).

Helpers here build the per-process constraint-graph node partition and
small guard/statement utilities used across the protocol files.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.core.constraint_graph import GraphNode
from repro.core.program import Program
from repro.core.variables import Variable

__all__ = ["process_nodes", "variables_of_process"]


def variables_of_process(
    variables: Iterable[Variable], process: Hashable
) -> frozenset[str]:
    """Names of the variables owned by ``process``."""
    return frozenset(v.name for v in variables if v.process == process)


def process_nodes(program: Program) -> list[GraphNode]:
    """One constraint-graph node per process, labeled with its variables.

    This is the natural node partition for the paper's distributed
    designs: node ``j`` of the constraint graph is process ``j`` and its
    label is the set of variables process ``j`` owns.
    """
    by_process: dict[Hashable, set[str]] = {}
    for variable in program.variables.values():
        if variable.process is None:
            raise ValueError(
                f"variable {variable.name!r} has no owning process; supply an "
                "explicit node partition instead"
            )
        by_process.setdefault(variable.process, set()).add(variable.name)
    return [
        GraphNode(name=str(process), variables=frozenset(names))
        for process, names in sorted(
            by_process.items(), key=lambda item: str(item[0])
        )
    ]
