"""Stabilizing diffusing computations (Section 5.1 of the paper).

A diffusing computation on a finite rooted tree: starting from all-green,
the root initiates a wave that colors nodes red from the root to the
leaves, is reflected at the leaves, and colors nodes green back up to the
root — and the cycle repeats. The program tolerates faults that
arbitrarily corrupt the state of any number of nodes (fault-span
``T = true``; the design is *stabilizing*).

Per node ``j`` the state is a color ``c.j ∈ {green, red}`` and a boolean
session number ``sn.j``. The invariant is ``S = (∀j :: R.j)`` over the
non-root nodes, with::

    R.j  =  (c.j = c.(P.j)  and  sn.j ≡ sn.(P.j))
            or  (c.j = green  and  c.(P.j) = red)

Each ``R.j`` is independently checkable and establishable by node ``j``,
so each is one constraint; the convergence action for ``R.j`` writes only
node ``j``'s variables and reads only ``j``'s and its parent's, making the
constraint graph exactly the tree — an out-tree — so Theorem 1 applies.

Three convergence-statement variants are provided (the paper discusses
the first two; the ablation experiment E8 compares them):

- ``"merged"`` — the paper's final program: the convergence action uses
  the same statement as the propagation closure action and the two are
  combined into ``sn.j ≠ sn.(P.j) or (c.j = red and c.(P.j) = green)
  -> c.j, sn.j := c.(P.j), sn.(P.j)``.
- ``"copy-parent"`` — a pure convergence action ``not R.j -> c.j, sn.j :=
  c.(P.j), sn.(P.j)`` kept separate from the propagation action.
- ``"conditional-green"`` — the paper's alternative statement: ``not R.j
  -> if c.(P.j) = red then c.j := green else c.j, sn.j := green,
  sn.(P.j)``.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.actions import Action, Assignment
from repro.core.candidate import CandidateTriple
from repro.core.constraints import Constraint, ConvergenceBinding
from repro.core.design import NonmaskingDesign
from repro.core.domains import BooleanDomain, EnumDomain
from repro.core.expr import BoolExpr, C, V, ite
from repro.core.predicates import Predicate, all_of
from repro.core.program import Program
from repro.core.variables import Variable
from repro.protocols.base import process_nodes
from repro.topology.tree import RootedTree

__all__ = [
    "GREEN",
    "RED",
    "VARIANTS",
    "color_var",
    "session_var",
    "diffusing_variables",
    "diffusing_closure_program",
    "diffusing_constraint",
    "diffusing_invariant",
    "build_diffusing_design",
    "all_green_state",
    "wave_complete",
]

GREEN = "green"
RED = "red"

#: Supported convergence-statement variants.
VARIANTS = ("merged", "copy-parent", "conditional-green")


def color_var(j: Hashable) -> str:
    """The name of node ``j``'s color variable, ``c.j``."""
    return f"c.{j}"


def session_var(j: Hashable) -> str:
    """The name of node ``j``'s session-number variable, ``sn.j``."""
    return f"sn.{j}"


def diffusing_variables(tree: RootedTree) -> list[Variable]:
    """The program variables: a color and a session number per node."""
    variables: list[Variable] = []
    for j in tree.nodes:
        variables.append(Variable(color_var(j), EnumDomain(GREEN, RED), process=j))
        variables.append(Variable(session_var(j), BooleanDomain(), process=j))
    return variables


def _initiate_action(tree: RootedTree) -> Action:
    root = tree.root
    c_root, sn_root = color_var(root), session_var(root)
    # Guards and right-hand sides are expression-DSL terms, so the
    # static analyzer sees exact supports and symbolic transfer
    # functions; semantics and display names match the paper's listing.
    return Action(
        "initiate",
        (V(c_root) == C(GREEN)).predicate(name=f"c.{root} = green"),
        Assignment({c_root: RED, sn_root: V(sn_root) == C(False)}),
        reads=(c_root, sn_root),
        process=root,
    )


def _propagate_guard(tree: RootedTree, j: Hashable) -> Predicate:
    parent = tree.parent(j)
    c_j, sn_j = color_var(j), session_var(j)
    c_p, sn_p = color_var(parent), session_var(parent)
    expr = (
        (V(c_j) == C(GREEN)) & (V(c_p) == C(RED)) & (V(sn_j) != V(sn_p))
    )
    return expr.predicate(
        name=f"c.{j} = green and c.{parent} = red and sn.{j} != sn.{parent}"
    )


def _copy_parent_effect(tree: RootedTree, j: Hashable) -> Assignment:
    parent = tree.parent(j)
    c_j, sn_j = color_var(j), session_var(j)
    c_p, sn_p = color_var(parent), session_var(parent)
    return Assignment({c_j: V(c_p), sn_j: V(sn_p)})


def _propagate_action(tree: RootedTree, j: Hashable, *, name: str) -> Action:
    parent = tree.parent(j)
    reads = (color_var(j), session_var(j), color_var(parent), session_var(parent))
    return Action(
        name,
        _propagate_guard(tree, j),
        _copy_parent_effect(tree, j),
        reads=reads,
        process=j,
    )


def _reflect_action(tree: RootedTree, j: Hashable) -> Action:
    c_j, sn_j = color_var(j), session_var(j)
    children = tree.children(j)
    child_vars = [(color_var(k), session_var(k)) for k in children]

    guard_expr: BoolExpr = V(c_j) == C(RED)
    for c_k, sn_k in child_vars:
        guard_expr = guard_expr & (
            (V(c_k) == C(GREEN)) & (V(sn_k) == V(sn_j))
        )
    # A leaf's guard consults only c.j (the child conjunction is empty),
    # so its read set is exactly {c.j}; declaring sn.j too would be an
    # over-declaration the exact symbolic inference flags as RW003.
    reads = [c_j]
    if child_vars:
        reads.append(sn_j)
    for c_k, sn_k in child_vars:
        reads.extend((c_k, sn_k))
    return Action(
        f"reflect.{j}",
        guard_expr.predicate(
            name=f"c.{j} = red and all children of {j} green with matching sn"
        ),
        Assignment({c_j: GREEN}),
        reads=reads,
        process=j,
    )


def diffusing_closure_program(tree: RootedTree) -> Program:
    """The candidate program of closure actions: initiate, propagate, reflect."""
    actions: list[Action] = [_initiate_action(tree)]
    for j in tree.non_root_nodes():
        actions.append(_propagate_action(tree, j, name=f"propagate.{j}"))
    for j in tree.nodes:
        actions.append(_reflect_action(tree, j))
    return Program("diffusing-closure", diffusing_variables(tree), actions)


def diffusing_constraint(tree: RootedTree, j: Hashable) -> Constraint:
    """The constraint ``R.j`` of a non-root node ``j``."""
    if j == tree.root:
        raise ValueError("the root has no constraint R.j (P.root = root)")
    parent = tree.parent(j)
    c_j, sn_j = color_var(j), session_var(j)
    c_p, sn_p = color_var(parent), session_var(parent)
    expr = ((V(c_j) == V(c_p)) & (V(sn_j) == V(sn_p))) | (
        (V(c_j) == C(GREEN)) & (V(c_p) == C(RED))
    )
    predicate = expr.predicate(
        name=(
            f"(c.{j} = c.{parent} and sn.{j} ≡ sn.{parent}) or "
            f"(c.{j} = green and c.{parent} = red)"
        )
    )
    return Constraint(name=f"R.{j}", predicate=predicate)


def diffusing_invariant(tree: RootedTree) -> Predicate:
    """``S = (for all non-root j :: R.j)``."""
    return all_of(
        [diffusing_constraint(tree, j).predicate for j in tree.non_root_nodes()],
        name="S(diffusing)",
    )


def _convergence_action(tree: RootedTree, j: Hashable, variant: str) -> Action:
    parent = tree.parent(j)
    c_j, sn_j = color_var(j), session_var(j)
    c_p, sn_p = color_var(parent), session_var(parent)
    reads = (c_j, sn_j, c_p, sn_p)
    constraint = diffusing_constraint(tree, j)

    if variant == "merged":
        guard_expr = (V(sn_j) != V(sn_p)) | (
            (V(c_j) == C(RED)) & (V(c_p) == C(GREEN))
        )
        guard = guard_expr.predicate(
            name=f"sn.{j} != sn.{parent} or (c.{j} = red and c.{parent} = green)"
        )
        return Action(
            f"propagate.{j}",
            guard,
            _copy_parent_effect(tree, j),
            reads=reads,
            process=j,
        )

    guard = (~constraint.predicate).renamed(f"not R.{j}")
    if variant == "copy-parent":
        effect = _copy_parent_effect(tree, j)
    elif variant == "conditional-green":
        effect = Assignment(
            {
                c_j: GREEN,
                sn_j: ite(V(c_p) == C(RED), V(sn_j), V(sn_p)),
            }
        )
    else:
        raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
    return Action(f"converge.{j}", guard, effect, reads=reads, process=j)


def build_diffusing_design(
    tree: RootedTree, *, variant: str = "merged"
) -> NonmaskingDesign:
    """The complete nonmasking design for the diffusing computation.

    Args:
        tree: The rooted tree the computation diffuses over (at least two
            nodes, since a single node carries no constraint).
        variant: Convergence-statement variant, one of :data:`VARIANTS`.

    Returns:
        A design whose constraint graph is the tree itself (an out-tree),
        validating under Theorem 1; its ``program`` property is the
        deployed program — with ``variant="merged"`` exactly the paper's
        three-action program listing.
    """
    if len(tree) < 2:
        raise ValueError("the diffusing computation needs at least two nodes")
    if variant not in VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; expected one of {VARIANTS}")
    closure = diffusing_closure_program(tree)
    constraints = tuple(
        diffusing_constraint(tree, j) for j in tree.non_root_nodes()
    )
    candidate = CandidateTriple(
        program=closure,
        invariant=diffusing_invariant(tree),
        constraints=constraints,
    )
    bindings = tuple(
        ConvergenceBinding(
            constraint=constraints[index],
            action=_convergence_action(tree, j, variant),
        )
        for index, j in enumerate(tree.non_root_nodes())
    )
    return NonmaskingDesign(
        name=f"diffusing[{variant}]",
        candidate=candidate,
        bindings=bindings,
        nodes=process_nodes(closure),
    )


def all_green_state(tree: RootedTree, *, session: bool = False) -> dict[str, object]:
    """The canonical initial state: every node green with equal sessions."""
    values: dict[str, object] = {}
    for j in tree.nodes:
        values[color_var(j)] = GREEN
        values[session_var(j)] = session
    return values


def wave_complete(tree: RootedTree) -> Predicate:
    """Holds when a wave has fully collapsed: every node is green again."""
    color_names = [color_var(j) for j in tree.nodes]
    return Predicate(
        lambda s: all(s[name] == GREEN for name in color_names),
        name="all nodes green",
        support=color_names,
    )
