"""Stabilizing maximal independent set (extension protocol).

A classic self-stabilizing algorithm (Shukla–Rosenkrantz–Ravi style):
each node of an undirected graph holds a flag ``in.j``; the target is an
independent set (no two adjacent members) that is maximal (every
non-member has a member neighbor). Rules, for nodes with totally ordered
identifiers:

- **enter.j** — ``j`` is out and no neighbor is in: join.
- **leave.j** — ``j`` is in and some *smaller-id* neighbor is in: defer.

The id-based tie-break is what makes the protocol converge under a
central daemon: the smallest inconsistent node always wins, giving a
lexicographic variant function. Without it, two adjacent nodes could
enter and leave in lockstep forever.

Like the matching protocol, the constraint structure is non-local (a
node's constraint reads all neighbors), so the certification route is
exhaustive model checking (E9) rather than a constraint-graph theorem.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.actions import Action, Assignment
from repro.core.domains import BooleanDomain
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.core.variables import Variable
from repro.topology.graph import Graph

__all__ = ["member_var", "build_mis_program", "mis_invariant", "members"]


def member_var(j: Hashable) -> str:
    """Node ``j``'s membership flag."""
    return f"in.{j}"


def members(graph: Graph, state: State) -> set[Hashable]:
    """The nodes currently in the set."""
    return {j for j in graph.nodes if state[member_var(j)]}


def build_mis_program(graph: Graph) -> Program:
    """The MIS program on ``graph`` (nodes must be sortable by ``str``)."""
    if len(graph) < 1:
        raise ValueError("need at least one node")
    variables = [
        Variable(member_var(j), BooleanDomain(), process=j) for j in graph.nodes
    ]
    actions: list[Action] = []
    for j in graph.nodes:
        mine = member_var(j)
        neighbor_names = [member_var(k) for k in graph.neighbors(j)]
        smaller_names = [
            member_var(k) for k in graph.neighbors(j) if str(k) < str(j)
        ]
        reads = [mine, *neighbor_names]
        actions.append(
            Action(
                f"enter.{j}",
                Predicate(
                    lambda s, mine=mine, neighbor_names=neighbor_names: (
                        not s[mine] and not any(s[n] for n in neighbor_names)
                    ),
                    name=f"node {j} out, no neighbor in",
                    support=reads,
                ),
                Assignment({mine: True}),
                reads=reads,
                process=j,
            )
        )
        if smaller_names:
            leave_reads = [mine, *smaller_names]
            actions.append(
                Action(
                    f"leave.{j}",
                    Predicate(
                        lambda s, mine=mine, smaller_names=smaller_names: (
                            s[mine] and any(s[n] for n in smaller_names)
                        ),
                        name=f"node {j} in, a smaller neighbor also in",
                        support=leave_reads,
                    ),
                    Assignment({mine: False}),
                    reads=leave_reads,
                    process=j,
                )
            )
    return Program("stabilizing-mis", variables, actions)


def mis_invariant(graph: Graph) -> Predicate:
    """``S``: independent and maximal."""
    support = [member_var(j) for j in graph.nodes]
    edges = list(graph.edges())

    def holds(state: State) -> bool:
        for u, v in edges:
            if state[member_var(u)] and state[member_var(v)]:
                return False
        for j in graph.nodes:
            if not state[member_var(j)] and not any(
                state[member_var(k)] for k in graph.neighbors(j)
            ):
                return False
        return True

    return Predicate(holds, name="S(mis)", support=support)
