"""Stabilizing distributed reset — an application of diffusing computations.

Section 5.1 motivates diffusing computations with their applications:
"global state snapshot, termination detection, deadlock detection, and
distributed reset". This module builds the distributed-reset application
on top of the diffusing design: each node carries an application variable
``app.j``; when the red wave visits a node (the propagate/convergence
action fires) the node resets ``app.j`` to the reset value, and the root
resets its own variable when it initiates a wave.

Because the wave machinery is stabilizing (Theorem 1), the composition is
too: from *any* state — wave variables and application variables both
arbitrarily corrupted — the wave structure first re-legitimizes, and the
next complete wave then drives every application variable to the reset
value, after which both stay put (the target predicate is closed).

This is the simplest instance of the general pattern "ride a
self-stabilizing wave to perform a global task"; the builder accepts any
per-node reset value so tests can distinguish "reset happened" from
"value was coincidentally right".
"""

from __future__ import annotations

from typing import Any, Hashable

from repro.core.actions import Action, Assignment
from repro.core.domains import IntegerRangeDomain
from repro.core.predicates import Predicate, all_of
from repro.core.program import Program
from repro.core.variables import Variable
from repro.protocols.diffusing import (
    build_diffusing_design,
    color_var,
    diffusing_invariant,
    session_var,
)
from repro.topology.tree import RootedTree

__all__ = ["app_var", "build_reset_program", "reset_target"]


def app_var(j: Hashable) -> str:
    """Node ``j``'s application variable."""
    return f"app.{j}"


def build_reset_program(
    tree: RootedTree,
    *,
    app_values: int = 4,
    reset_value: int = 0,
) -> Program:
    """The diffusing computation extended with application resets.

    Args:
        tree: The rooted tree.
        app_values: Size of each application variable's domain
            (``0 .. app_values-1``).
        reset_value: The value the wave installs everywhere.
    """
    if not 0 <= reset_value < app_values:
        raise ValueError("reset_value must lie in the application domain")
    design = build_diffusing_design(tree, variant="merged")
    base = design.program

    domain = IntegerRangeDomain(0, app_values - 1)
    variables = list(base.variables.values()) + [
        Variable(app_var(j), domain, process=j) for j in tree.nodes
    ]

    actions: list[Action] = []
    for action in base.actions:
        if action.name == "initiate":
            root = tree.root
            effect = Assignment(
                {
                    color_var(root): "red",
                    session_var(root): lambda s: not s[session_var(root)],
                    app_var(root): reset_value,
                }
            )
            actions.append(
                Action(
                    action.name,
                    action.guard,
                    effect,
                    reads=tuple(action.reads | {app_var(root)}),
                    process=action.process,
                )
            )
        elif action.name.startswith("propagate."):
            j = action.name.removeprefix("propagate.")
            node = _node_with_name(tree, j)
            parent = tree.parent(node)
            effect = Assignment(
                {
                    color_var(node): lambda s, p=parent: s[color_var(p)],
                    session_var(node): lambda s, p=parent: s[session_var(p)],
                    app_var(node): reset_value,
                }
            )
            actions.append(
                Action(
                    action.name,
                    action.guard,
                    effect,
                    reads=tuple(action.reads | {app_var(node)}),
                    process=action.process,
                )
            )
        else:
            actions.append(action)
    return Program(f"distributed-reset[{len(tree)}]", variables, actions)


def _node_with_name(tree: RootedTree, name: str) -> Any:
    for node in tree.nodes:
        if str(node) == name:
            return node
    raise KeyError(f"no tree node named {name!r}")


def reset_target(tree: RootedTree, *, reset_value: int = 0) -> Predicate:
    """The composed target: wave structure legitimate and all apps reset.

    Closed under the reset program (waves keep re-installing the reset
    value), and every computation from an arbitrary state reaches it —
    the stabilizing wave plus one full traversal.
    """
    wave_ok = diffusing_invariant(tree)
    app_names = [app_var(j) for j in tree.nodes]
    apps_reset = Predicate(
        lambda s: all(s[name] == reset_value for name in app_names),
        name=f"all app.j = {reset_value}",
        support=app_names,
    )
    return all_of([wave_ok, apps_reset], name="S(distributed-reset)")
