"""repro — Constraint Satisfaction as a Basis for Designing Nonmasking
Fault-Tolerance (Arora, Gouda, Varghese 1994).

A library for designing, validating and simulating nonmasking
fault-tolerant (including self-stabilizing) programs:

- :mod:`repro.core` — guarded-command programs, invariants and
  fault-spans, constraints, constraint graphs, and machine-checked
  validators for the paper's Theorems 1–3.
- :mod:`repro.scheduler` — daemons: random, round-robin, queue-fair,
  synchronous, distributed, and adversarial.
- :mod:`repro.faults` — faults as state-changing actions; injection
  scenarios.
- :mod:`repro.verification` — exhaustive model checking of closure,
  convergence (with and without fairness), full T-tolerance, and
  convergence stairs.
- :mod:`repro.simulation` — run loops, stabilization metrics, replicated
  experiments.
- :mod:`repro.protocols` — the paper's three designs plus extension
  protocols built with the same method.
- :mod:`repro.topology` — trees, rings, graphs and generators.
- :mod:`repro.analysis` — summary statistics and result tables.
- :mod:`repro.quantitative` — *how* tolerant: expected, fault-weighted
  and adversarial worst-case convergence times plus a
  masking-distance-style score (``verify(..., quantify=True)``).

Quickstart::

    from repro.protocols import build_diffusing_design
    from repro.topology import balanced_tree

    design = build_diffusing_design(balanced_tree(2, 2))
    states = list(design.program.state_space())
    report = design.validate(states)       # Theorem 1 certificate
    assert report.ok

or, through the stable facade (cached, lint-aware, and compositional
when the theorems apply — see ``docs/API.md``)::

    import repro

    verdict = repro.verify("diffusing-chain", size=4)
    assert verdict.ok
"""

from repro.api import Verdict, verify
from repro.core import (
    Action,
    Assignment,
    CandidateTriple,
    Constraint,
    ConstraintGraph,
    ConvergenceBinding,
    NonmaskingDesign,
    Predicate,
    Program,
    State,
    Variable,
)
from repro.quantitative import QuantitativeReport, hitting_times, quantify

__version__ = "1.0.0"

__all__ = [
    "Action",
    "Assignment",
    "CandidateTriple",
    "Constraint",
    "ConstraintGraph",
    "ConvergenceBinding",
    "NonmaskingDesign",
    "Predicate",
    "Program",
    "QuantitativeReport",
    "State",
    "Variable",
    "Verdict",
    "__version__",
    "hitting_times",
    "quantify",
    "verify",
]
