"""Quantitative tolerance: convergence-time analysis at kernel speed.

The paper's verdicts are boolean — a program either is or is not
nonmasking-tolerant — but *how* tolerant matters operationally: two
verified protocols can differ by orders of magnitude in how long the
random daemon takes to re-establish the invariant after a fault, and in
how far an adversarial scheduler can stretch recovery. Following the
masking-distance line of work (Castro et al., "Measuring Masking
Fault-Tolerance"; "Quantifying Masking Fault-Tolerance via Fair
Stochastic Games" — see ``docs/PAPER_MAP.md``), this module turns the
verified transition system into numbers:

- **Expected convergence time** under the seeded random daemon: at each
  non-target state one enabled transition is chosen uniformly; the
  expected steps-to-target solve the absorbing hitting-time system

      E[s] = 0                                   if target(s)
      E[s] = 1 + (1/|enabled(s)|) * sum E[s']    otherwise

  computed by **CSR-native value iteration** directly over the packed
  kernel's ``offsets``/``targets`` arrays — no dense matrix is ever
  materialized (the historical dense ``numpy.linalg`` solve survives as
  :func:`dense_hitting_times`, the toy-size differential reference).
  Jacobi sweeps run vectorized when numpy is present and fall back to a
  **bit-compatible** pure-Python scalar loop otherwise, mirroring the
  ``repro.kernel.sweeps`` gating discipline: both paths perform the
  same IEEE operations in the same order, so their results are
  bit-identical (the differential suite pins this).

- **Fault-rate-weighted expectation**: transitions fired by fault
  actions (``fault_actions=``, defaulting to action names starting with
  ``"fault"``) are weighted ``fault_rate`` against ``1.0`` for program
  actions, normalized per state — the chain of a system whose
  environment injects faults at a known relative rate.

- **Worst-case convergence span**: the game value against the
  adversarial scheduler, which at every state picks the enabled
  transition maximizing remaining time. Computed exactly by max-player
  value iteration in attractor order over the same CSR graph; states
  the adversary can trap outside the target (a cycle or deadlock that
  avoids it) get ``math.inf``.

- **A masking-distance-style score** in ``[0, 1]`` combining the
  fault-span escape probability (the chance a uniformly random span
  start never converges) with the normalized expected convergence time
  — ``0.0`` is immediate convergence from everywhere, ``1.0`` is a span
  that never recovers. See ``docs/QUANTITATIVE.md`` for the exact
  definition.

States that reach the target with probability < 1 under the random
daemon (they can wander into a region from which the target is
unreachable, or deadlock outside it) have infinite expected hitting
time and are reported as ``math.inf``, exactly as the historical dense
solver did.

Surfaced through the facade as ``repro.verify(case, quantify=True)``
(the attached :class:`QuantitativeReport` satisfies the
:class:`repro.Verdict` protocol), the CLI (``repro verify --quantify``)
and the daemon (``POST /verify`` with ``"quantify": true``).
"""

from __future__ import annotations

import math
import time
from collections.abc import Collection, Iterable
from dataclasses import dataclass, fields
from typing import Any

from repro.core.errors import ValidationError
from repro.core.predicates import TRUE, Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.observability import events as ev

try:  # numpy is optional: the scalar fallback mirrors every result
    import numpy as _np
except ImportError:  # pragma: no cover - exercised by the fallback CI leg
    _np = None

__all__ = [
    "DEFAULT_FAULT_RATE",
    "DEFAULT_TOL",
    "DENSE_AGREEMENT_RTOL",
    "FORCE_SCALAR",
    "HAVE_NUMPY",
    "HittingTimes",
    "MAX_VALUE_SWEEPS",
    "QuantitativeReport",
    "QuantitativeUnsupported",
    "dense_hitting_times",
    "hitting_times",
    "quantify",
    "worst_case_steps",
]

#: Whether numpy was importable; without it the scalar sweeps run.
HAVE_NUMPY = _np is not None

#: Force the pure-Python scalar value iteration even when numpy is
#: present. The differential suite flips this to pin that the two paths
#: are bit-identical.
FORCE_SCALAR = False

#: Default relative convergence threshold of the value iteration: a
#: sweep whose largest per-state update falls below
#: ``tol * (1 + max expectation)`` is the last.
DEFAULT_TOL = 1e-12

#: Default relative weight of a fault action against a program action
#: in the fault-rate-weighted chain.
DEFAULT_FAULT_RATE = 0.1

#: Hard sweep cap; an instance that has not converged by then is
#: reported with ``converged=False`` rather than looping forever.
MAX_VALUE_SWEEPS = 100_000

#: The documented agreement bar between the CSR value iteration and the
#: dense reference solve (relative, on every finite expectation). The
#: differential suite pins it across the protocol library.
DENSE_AGREEMENT_RTOL = 1e-6


class QuantitativeUnsupported(Exception):
    """The quantitative analysis cannot run on this instance as asked.

    Raised for structured refusals — numpy missing for the dense
    reference solve, or a ``memory_budget=`` the resident value-
    iteration arrays cannot fit under (unlike the boolean kernel there
    is no streaming variant: the expectation vector must stay resident
    across sweeps).
    """


# ----------------------------------------------------------------------
# Result types
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class HittingTimes:
    """Exact expected steps-to-target per state, plus aggregates.

    The canonical home of the type that used to live in
    :mod:`repro.analysis.markov`; ``expectations`` is aligned with
    ``system.states`` and states that miss the target with positive
    probability carry ``math.inf``.
    """

    #: Expected steps from each state, aligned with ``system.states``.
    expectations: tuple[float, ...]
    #: Mean over every state of the instance (uniform random start).
    mean: float
    #: Worst start state's expectation.
    maximum: float
    system: Any
    #: Value-iteration sweeps performed (0 for the dense solve).
    iterations: int = 0
    #: Whether the iteration met its tolerance within the sweep cap.
    converged: bool = True

    def expectation_of(self, state: State) -> float:
        return self.expectations[self.system.index_of(state)]

    @property
    def all_finite(self) -> bool:
        return all(not math.isinf(v) for v in self.expectations)


@dataclass(frozen=True)
class QuantitativeReport:
    """The quantitative tolerance verdict of one instance.

    Satisfies the :class:`repro.Verdict` protocol: ``ok`` is ``True``
    when every fault-span state converges with probability 1 under the
    random daemon **and** the adversarial scheduler cannot prevent
    convergence (finite worst case), with the value iteration having
    met its tolerance. ``to_json`` has a pinned key set (see
    ``tests/test_cli_json.py``).
    """

    case: str
    ok: bool
    #: Graph representation the analysis ran over: "packed" or "dict".
    engine: str
    #: Value-iteration execution path: "vector" (numpy) or "scalar".
    path: str
    states: int
    target_states: int
    span_states: int
    #: Span states whose random-daemon expectation is infinite.
    doomed_states: int
    #: ``doomed_states / span_states`` — the chance a uniformly random
    #: span start never converges under the random daemon.
    escape_probability: float
    #: Mean expectation over the span (``math.inf`` if any is doomed).
    mean_steps: float
    #: Worst span start's expectation (``math.inf`` if doomed).
    max_steps: float
    #: Adversarial-scheduler game value over the span (``math.inf``
    #: when the adversary can trap the system outside the target).
    worst_case_steps: float
    #: Span mean under the fault-rate-weighted chain (equals
    #: ``mean_steps`` when the program has no fault actions).
    weighted_mean_steps: float
    fault_rate: float
    #: Masking-distance-style score in [0, 1]; 0 is immediate
    #: convergence from everywhere, 1 a span that never recovers.
    score: float
    #: Total value-iteration sweeps (uniform + weighted chains).
    iterations: int
    converged: bool
    tol: float
    seconds: float

    def __bool__(self) -> bool:
        return self.ok

    def to_json(self) -> dict[str, Any]:
        """JSON-able report with a stable key set.

        Infinite expectations serialize as the JSON extension literal
        ``Infinity`` (Python's ``json`` module reads it back as
        ``math.inf``).
        """
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_record(cls, record: dict[str, Any]) -> "QuantitativeReport":
        """Rebuild a report from its :meth:`to_json` record."""
        return cls(**{f.name: record[f.name] for f in fields(cls)})

    def describe(self) -> str:
        verdict = "converges" if self.ok else "does NOT converge"
        worst = (
            "unbounded"
            if math.isinf(self.worst_case_steps)
            else f"{self.worst_case_steps:g} steps"
        )

        def steps(value: float) -> str:
            return "inf" if math.isinf(value) else f"{value:.4f}"

        return "\n".join(
            [
                f"quantitative tolerance of {self.case}: "
                f"score {self.score:.6f} [{verdict}]",
                f"  random daemon: mean {steps(self.mean_steps)} steps, "
                f"worst start {steps(self.max_steps)}",
                f"  fault-weighted (rate {self.fault_rate:g}): "
                f"mean {steps(self.weighted_mean_steps)} steps",
                f"  adversarial daemon: worst case {worst}",
                f"  span: {self.span_states} of {self.states} states, "
                f"{self.doomed_states} doomed "
                f"(escape probability {self.escape_probability:.4f})",
                f"  value iteration: {self.iterations} sweeps "
                f"[{self.path}/{self.engine}], tol {self.tol:g}, "
                f"{'converged' if self.converged else 'NOT converged'}",
            ]
        )


# ----------------------------------------------------------------------
# CSR extraction
# ----------------------------------------------------------------------


@dataclass
class _Graph:
    """The CSR arrays one quantitative analysis runs over."""

    n: int
    #: Row offsets (length n+1) and edge targets; list/array/ndarray.
    offsets: Any
    targets: Any
    #: Per-state booleans (indexable; list or ndarray).
    is_target: Any
    #: Per-state span membership, or None when the span is TRUE.
    in_span: Any
    #: Per-edge fault-action flags, or None when no action is a fault.
    fault_edge: Any
    engine: str


def _is_fault_name(name: str, fault_actions: Collection[str] | None) -> bool:
    if fault_actions is not None:
        return name in fault_actions
    return name.lower().startswith("fault")


def _graph_from_system(
    system: Any,
    target: Predicate,
    span: Predicate,
    fault_actions: Collection[str] | None,
) -> _Graph:
    """CSR arrays of a built (packed or dict) transition system."""
    from repro.kernel import PackedTransitionSystem

    n = len(system)
    if system.escapes:
        raise ValueError("the state set is not closed under the program")
    is_target = [False] * n
    for index in system.satisfying(target):
        is_target[index] = True
    if span is TRUE:
        in_span = None
    else:
        in_span = [False] * n
        for index in system.satisfying(span):
            in_span[index] = True
    if isinstance(system, PackedTransitionSystem):
        is_fault = [
            _is_fault_name(name, fault_actions) for name in system.action_names
        ]
        fault_edge = (
            [is_fault[aid] for aid in system.action_ids]
            if any(is_fault)
            else None
        )
        return _Graph(
            n=n,
            offsets=system.offsets,
            targets=system.targets,
            is_target=is_target,
            in_span=in_span,
            fault_edge=fault_edge,
            engine="packed",
        )
    offsets = [0]
    targets: list[int] = []
    fault_edge = []
    for row in system.edges:
        for action_name, destination in row:
            targets.append(destination)
            fault_edge.append(_is_fault_name(action_name, fault_actions))
        offsets.append(len(targets))
    return _Graph(
        n=n,
        offsets=offsets,
        targets=targets,
        is_target=is_target,
        in_span=in_span,
        fault_edge=fault_edge if any(fault_edge) else None,
        engine="dict",
    )


def _full_space_graph(
    program: Program,
    target: Predicate,
    span: Predicate,
    fault_actions: Collection[str] | None,
    *,
    shards: int | None,
    memory_budget: int | None,
    metrics: Any,
) -> _Graph | None:
    """The vectorized (optionally sharded) full-space CSR, or ``None``.

    Mirrors the kernel's sweep gating: numpy present, the space large
    enough to amortize numpy's fixed overhead (unless ``shards`` was
    requested explicitly), and every construct inside the vectorized
    fragment — anything else returns ``None`` and the caller builds the
    system through the ordinary engines. The produced masks and CSR are
    bit-identical to the scalar build (the kernel differential suite
    pins the sweep; this module's suite pins the solve).
    """
    if _np is None or FORCE_SCALAR:
        return None
    from repro.kernel import compile_program, kernel_supported
    from repro.kernel import shard as sharding
    from repro.kernel import sweeps

    if not kernel_supported(program):
        return None
    kernel = compile_program(program)
    size = kernel.codec.size
    if shards is None and size < sweeps.VECTOR_MIN_STATES:
        return None
    try:
        plan = sweeps.SweepPlan(
            kernel, target, None if span is TRUE else span
        )
        ranges = sharding.plan_shards(size, shards)
        merged, _transfer = sharding.sweep_merged(plan, ranges, metrics=metrics)
    except sweeps.SweepUnsupported:
        return None
    s_mask, t_mask, offsets, targets, action_ids = merged
    edges = int(offsets[-1])
    # Resident footprint of the solve: the CSR plus the edge-source
    # index and three float vectors — all must stay in memory across
    # sweeps, so a budget below it is a structured refusal, not a
    # streaming fallback.
    resident = (
        s_mask.nbytes
        + (0 if t_mask is None else t_mask.nbytes)
        + offsets.nbytes
        + targets.nbytes
        + action_ids.nbytes
        + 8 * edges  # edge-source index for the segment sums
        + 8 * edges  # per-sweep gathered successor values
        + 3 * 8 * size  # expectation, segment-sum and update vectors
    )
    if metrics is not None:
        metrics.counter("quantitative.mem.bytes").add(resident)
    if memory_budget is not None and resident > memory_budget:
        raise QuantitativeUnsupported(
            f"value iteration over {size} states / {edges} edges needs "
            f"~{resident} resident bytes, above the {memory_budget}-byte "
            "memory_budget; unlike the boolean sweep there is no "
            "streaming variant — raise or drop the budget"
        )
    is_fault = [_is_fault_name(name, fault_actions) for name in kernel.action_names]
    fault_edge = (
        _np.asarray(is_fault, dtype=bool)[_np.asarray(action_ids)]
        if any(is_fault)
        else None
    )
    return _Graph(
        n=size,
        offsets=offsets,
        targets=targets,
        is_target=s_mask,
        in_span=t_mask,
        fault_edge=fault_edge,
        engine="packed",
    )


# ----------------------------------------------------------------------
# Reachability classification (exact)
# ----------------------------------------------------------------------


def _classify_scalar(n: int, offsets, targets, is_target) -> list[bool]:
    """Which states have infinite expectation (probability < 1 to hit).

    Two backward closures, exactly as the historical dense solver
    computed them: states that cannot reach the target at all, then
    states that can wander (without first being absorbed) into one.
    """
    predecessors: list[list[int]] = [[] for _ in range(n)]
    for source in range(n):
        if is_target[source]:
            continue  # target states are absorbing for the hitting time
        for k in range(offsets[source], offsets[source + 1]):
            predecessors[targets[k]].append(source)

    reaches = [bool(is_target[i]) for i in range(n)]
    frontier = [i for i in range(n) if is_target[i]]
    while frontier:
        node = frontier.pop()
        for back in predecessors[node]:
            if not reaches[back]:
                reaches[back] = True
                frontier.append(back)

    doomed = [not flag for flag in reaches]
    frontier = [i for i in range(n) if doomed[i]]
    while frontier:
        node = frontier.pop()
        for back in predecessors[node]:
            if not doomed[back] and not is_target[back]:
                doomed[back] = True
                frontier.append(back)
    return doomed


def _classify_vector(n: int, offsets, targets, is_target):
    """Vectorized :func:`_classify_scalar`: reverse CSR + frontier BFS."""
    from repro.kernel.sweeps import frontier_reach

    np = _np
    off = np.asarray(offsets, dtype=np.int64)
    tgt = np.asarray(targets, dtype=np.int64)
    counts = off[1:] - off[:-1]
    src = np.repeat(np.arange(n, dtype=np.int64), counts)
    is_t = np.asarray(is_target, dtype=bool)
    keep = ~is_t[src]  # target states are absorbing
    rev_src = tgt[keep]
    rev_dst = src[keep]
    rev_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(rev_src, minlength=n), out=rev_offsets[1:])
    rev_targets = rev_dst[np.argsort(rev_src, kind="stable")]
    target_roots = np.flatnonzero(is_t)
    reaches = (
        frontier_reach(rev_offsets, rev_targets, target_roots, n)
        if target_roots.size
        else np.zeros(n, dtype=bool)
    )
    nonreaching = np.flatnonzero(~reaches)
    if not nonreaching.size:
        return np.zeros(n, dtype=bool)
    return frontier_reach(rev_offsets, rev_targets, nonreaching, n)


# ----------------------------------------------------------------------
# Value iteration (the random-daemon chains)
# ----------------------------------------------------------------------


def _solve_scalar(
    n: int, offsets, targets, is_target, doomed, weights,
    tol: float, max_sweeps: int,
) -> tuple[list[float], int, bool]:
    """Pure-Python Jacobi sweeps, bit-compatible with the vector path.

    Every accumulation runs in the CSR edge order — the same sequential
    IEEE additions ``numpy.bincount`` performs — and the stopping rule
    compares the same floats, so both paths take the same number of
    sweeps and produce bit-identical expectations.
    """
    x = [0.0] * n
    transient = [
        i for i in range(n) if not is_target[i] and not doomed[i]
    ]
    if not transient:
        return x, 0, True
    totals = []
    for i in transient:
        if weights is None:
            totals.append(float(offsets[i + 1] - offsets[i]))
        else:
            acc = 0.0
            for k in range(offsets[i], offsets[i + 1]):
                acc += weights[k]
            totals.append(acc)
    new = [0.0] * len(transient)
    sweeps_done = 0
    converged = False
    while sweeps_done < max_sweeps:
        sweeps_done += 1
        peak = 0.0
        delta = 0.0
        for position, i in enumerate(transient):
            acc = 0.0
            if weights is None:
                for k in range(offsets[i], offsets[i + 1]):
                    acc += x[targets[k]]
            else:
                for k in range(offsets[i], offsets[i + 1]):
                    acc += weights[k] * x[targets[k]]
            value = 1.0 + acc / totals[position]
            new[position] = value
            if value > peak:
                peak = value
            diff = value - x[i]
            if diff < 0.0:
                diff = -diff
            if diff > delta:
                delta = diff
        for position, i in enumerate(transient):
            x[i] = new[position]
        if delta <= tol * (1.0 + peak):
            converged = True
            break
    return x, sweeps_done, converged


def _solve_vector(
    n: int, offsets, targets, is_target, doomed, weights,
    tol: float, max_sweeps: int,
) -> tuple[list[float], int, bool]:
    """Vectorized Jacobi sweeps: one gather + segment sum per sweep."""
    np = _np
    off = np.asarray(offsets, dtype=np.int64)
    tgt = np.asarray(targets, dtype=np.int64)
    counts = off[1:] - off[:-1]
    src = np.repeat(np.arange(n, dtype=np.int64), counts)
    is_t = np.asarray(is_target, dtype=bool)
    doom = np.asarray(doomed, dtype=bool)
    index = np.flatnonzero(~is_t & ~doom)
    x = np.zeros(n, dtype=np.float64)
    if index.size == 0:
        return x.tolist(), 0, True
    if weights is None:
        edge_weights = None
        totals = counts[index].astype(np.float64)
    else:
        edge_weights = np.asarray(weights, dtype=np.float64)
        totals = np.bincount(src, weights=edge_weights, minlength=n)[index]
    sweeps_done = 0
    converged = False
    while sweeps_done < max_sweeps:
        sweeps_done += 1
        values = x[tgt] if edge_weights is None else edge_weights * x[tgt]
        sums = np.bincount(src, weights=values, minlength=n)
        new = 1.0 + sums[index] / totals
        peak = float(new.max())
        delta = float(np.abs(new - x[index]).max())
        x[index] = new
        if delta <= tol * (1.0 + peak):
            converged = True
            break
    return x.tolist(), sweeps_done, converged


def _solve(
    graph: _Graph, doomed, weights, tol: float, max_sweeps: int,
) -> tuple[list[float], int, bool, str]:
    """Dispatch one chain solve; returns ``(x, sweeps, converged, path)``."""
    if HAVE_NUMPY and not FORCE_SCALAR:
        x, sweeps_done, converged = _solve_vector(
            graph.n, graph.offsets, graph.targets, graph.is_target,
            doomed, weights, tol, max_sweeps,
        )
        return x, sweeps_done, converged, "vector"
    x, sweeps_done, converged = _solve_scalar(
        graph.n, graph.offsets, graph.targets, graph.is_target,
        doomed, weights, tol, max_sweeps,
    )
    return x, sweeps_done, converged, "scalar"


# ----------------------------------------------------------------------
# Adversarial game value (max-player, attractor order)
# ----------------------------------------------------------------------


def _adversarial_values(n: int, offsets, targets, is_target) -> list[float]:
    """Exact game value against the adversarial scheduler, per state.

    Max-player value iteration evaluated in attractor order: a state
    joins the finite region only once *every* enabled transition leads
    into it (the adversary picks the worst), at which point its value
    is ``1 + max`` over the successors — all already final. States the
    adversary can keep outside the target (a cycle avoiding it, or a
    deadlock) never join and stay ``math.inf``.
    """
    predecessors: list[list[int]] = [[] for _ in range(n)]
    remaining = [0] * n
    for source in range(n):
        if is_target[source]:
            continue
        remaining[source] = offsets[source + 1] - offsets[source]
        for k in range(offsets[source], offsets[source + 1]):
            predecessors[targets[k]].append(source)
    values = [math.inf] * n
    best = [0.0] * n
    queue = [i for i in range(n) if is_target[i]]
    for i in queue:
        values[i] = 0.0
    head = 0
    while head < len(queue):
        node = queue[head]
        head += 1
        reached = values[node] + 1.0
        for back in predecessors[node]:
            if best[back] < reached:
                best[back] = reached
            remaining[back] -= 1
            if remaining[back] == 0:
                values[back] = best[back]
                queue.append(back)
    return values


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------


def hitting_times(
    program: Program,
    states: Iterable[State],
    target: Predicate,
    *,
    system: Any = None,
    engine: str = "auto",
    tol: float = DEFAULT_TOL,
    max_sweeps: int = MAX_VALUE_SWEEPS,
) -> HittingTimes:
    """Random-daemon expected steps-to-target, by CSR value iteration.

    The drop-in successor of the deprecated
    ``repro.analysis.markov.expected_convergence_steps``: same model,
    same ``math.inf`` semantics, same closedness check — but solved by
    sparse value iteration over the transition system's CSR arrays
    instead of a dense linear solve, so it scales with edges rather
    than states squared.

    Args:
        program: The program (its transition graph defines the chain).
        states: A closed finite state set (typically the full space).
        target: The closed target predicate (``S``).
        system: Optional prebuilt transition system to share work.
        engine: ``"packed"``, ``"dict"`` or ``"auto"`` — how the system
            is represented when built here.
        tol: Relative convergence threshold of the value iteration.
        max_sweeps: Sweep cap; past it ``converged`` is ``False``.

    Raises:
        ValueError: if the supplied state set is not closed.
    """
    from repro.verification.explorer import build_transition_system

    ts = (
        system
        if system is not None
        else build_transition_system(program, states, engine=engine)
    )
    graph = _graph_from_system(ts, target, TRUE, None)
    expectations, iterations, converged = _finish_expectations(
        graph, tol, max_sweeps
    )
    return HittingTimes(
        expectations=expectations,
        mean=_mean_with_inf(expectations),
        maximum=max(expectations) if expectations else 0.0,
        system=ts,
        iterations=iterations,
        converged=converged,
    )


def _finish_expectations(
    graph: _Graph, tol: float, max_sweeps: int,
) -> tuple[tuple[float, ...], int, bool]:
    doomed = _classify(graph)
    x, iterations, converged, _path = _solve(graph, doomed, None, tol, max_sweeps)
    for i in range(graph.n):
        if doomed[i]:
            x[i] = math.inf
    return tuple(float(v) for v in x), iterations, converged


def _classify(graph: _Graph):
    if HAVE_NUMPY and not FORCE_SCALAR:
        return _classify_vector(
            graph.n, graph.offsets, graph.targets, graph.is_target
        )
    return _classify_scalar(
        graph.n, graph.offsets, graph.targets, graph.is_target
    )


def _mean_with_inf(values) -> float:
    if any(math.isinf(v) for v in values):
        return math.inf
    if not len(values):
        return 0.0
    total = 0.0
    for v in values:
        total += v
    return total / len(values)


def dense_hitting_times(
    program: Program,
    states: Iterable[State],
    target: Predicate,
    *,
    system: Any = None,
) -> HittingTimes:
    """The historical dense linear solve — the differential reference.

    Materializes the full transient-state matrix and solves it with
    ``numpy.linalg.solve``; exact, but O(states^2) memory and
    O(states^3) time, so it is only suitable for toy sizes. The
    differential suite pins :func:`hitting_times` against it within
    :data:`DENSE_AGREEMENT_RTOL` on every library protocol.

    Raises:
        QuantitativeUnsupported: when numpy is not installed.
        ValueError: if the supplied state set is not closed.
    """
    if _np is None:
        raise QuantitativeUnsupported(
            "dense_hitting_times needs numpy; use hitting_times (the "
            "CSR value iteration has a pure-Python path)"
        )
    from repro.verification.explorer import build_transition_system

    ts = (
        system
        if system is not None
        else build_transition_system(program, states)
    )
    if ts.escapes:
        raise ValueError("the state set is not closed under the program")

    n = len(ts)
    is_target = _np.array([target(state) for state in ts.states], dtype=bool)
    doomed = _classify_scalar(
        *_dense_csr(ts), [bool(flag) for flag in is_target]
    )

    transient = [
        i for i in range(n) if not is_target[i] and not doomed[i]
    ]
    position = {state_index: k for k, state_index in enumerate(transient)}

    values = _np.zeros(n)
    for i in range(n):
        if doomed[i]:
            values[i] = math.inf

    if transient:
        m = len(transient)
        matrix = _np.eye(m)
        rhs = _np.ones(m)
        for k, state_index in enumerate(transient):
            edges = ts.edges[state_index]
            weight = 1.0 / len(edges)
            for _, destination in edges:
                if destination in position:
                    matrix[k, position[destination]] -= weight
                # Destinations in the target contribute 0; doomed
                # destinations are impossible here by construction.
        solution = _np.linalg.solve(matrix, rhs)
        for k, state_index in enumerate(transient):
            values[state_index] = solution[k]

    expectations = tuple(float(v) for v in values)
    has_inf = bool(_np.isinf(values).any())
    return HittingTimes(
        expectations=expectations,
        mean=math.inf if has_inf else float(values.mean()),
        maximum=float(values.max()) if n else 0.0,
        system=ts,
    )


def _dense_csr(ts) -> tuple[int, list[int], list[int]]:
    offsets = [0]
    targets: list[int] = []
    for row in ts.edges:
        targets.extend(destination for _name, destination in row)
        offsets.append(len(targets))
    return len(ts), offsets, targets


def worst_case_steps(
    program: Program,
    states: Iterable[State],
    target: Predicate,
    *,
    system: Any = None,
    engine: str = "auto",
) -> tuple[float, ...]:
    """Adversarial-scheduler game value per state (``math.inf``-able).

    The per-state counterpart of
    :attr:`QuantitativeReport.worst_case_steps`, aligned with the
    system's state order.

    Raises:
        ValueError: if the supplied state set is not closed.
    """
    from repro.verification.explorer import build_transition_system

    ts = (
        system
        if system is not None
        else build_transition_system(program, states, engine=engine)
    )
    graph = _graph_from_system(ts, target, TRUE, None)
    return tuple(
        _adversarial_values(
            graph.n, graph.offsets, graph.targets, graph.is_target
        )
    )


def quantify(
    program: Program,
    invariant: Predicate,
    fault_span: Predicate | None = None,
    states: Iterable[State] | None = None,
    *,
    engine: str = "auto",
    fault_rate: float = DEFAULT_FAULT_RATE,
    fault_actions: Collection[str] | None = None,
    tol: float = DEFAULT_TOL,
    max_sweeps: int = MAX_VALUE_SWEEPS,
    shards: int | None = None,
    memory_budget: int | None = None,
    system: Any = None,
    case: str | None = None,
    tracer: Any = None,
    metrics: Any = None,
) -> QuantitativeReport:
    """The full quantitative tolerance analysis of one instance.

    Computes the random-daemon expected convergence time to
    ``invariant``, its fault-rate-weighted variant, the adversarial
    worst-case span, and the masking-distance score over the
    ``fault_span`` states (``None`` = the whole space). The analysis
    runs over the full state space by default; like the packed boolean
    verifier it prefers the vectorized sharded full-space sweep
    (honoring ``shards=``/``memory_budget=``) and falls back to the
    ordinary engines otherwise.

    Args:
        program: The augmented program.
        invariant: ``S`` — the convergence target.
        fault_span: ``T``; defaults to ``TRUE``.
        states: Explicit closed state set; defaults to the full space.
        engine: ``"packed"``, ``"dict"`` or ``"auto"``.
        fault_rate: Relative weight of a fault action against a program
            action in the weighted chain (must be positive).
        fault_actions: Action names treated as faults; ``None`` detects
            them by the ``"fault"`` name prefix.
        tol: Relative convergence threshold of the value iteration.
        max_sweeps: Sweep cap; past it ``converged`` is ``False``.
        shards: Shard count for the vectorized full-space sweep.
        memory_budget: Resident-bytes ceiling for the vectorized solve;
            exceeding it raises :class:`QuantitativeUnsupported` (there
            is no streaming value iteration).
        system: Optional prebuilt transition system to share work.
        case: Display name recorded in the report.
        tracer: Optional tracer (emits ``quantitative.solve``).
        metrics: Optional metrics registry (``quantitative.*``).

    Raises:
        ValidationError: on a non-positive ``fault_rate``.
        ValueError: if the supplied state set is not closed.
        QuantitativeUnsupported: on an unsatisfiable ``memory_budget``.
    """
    if not fault_rate > 0.0:
        raise ValidationError(
            f"fault_rate must be positive, got {fault_rate!r}"
        )
    started = time.perf_counter()
    span = fault_span if fault_span is not None else TRUE
    name = case if case is not None else program.name

    graph: _Graph | None = None
    if system is None and states is None and engine != "dict":
        graph = _full_space_graph(
            program, invariant, span, fault_actions,
            shards=shards, memory_budget=memory_budget, metrics=metrics,
        )
    if graph is None:
        from repro.verification.explorer import build_transition_system

        ts = (
            system
            if system is not None
            else build_transition_system(
                program,
                states if states is not None else program.state_space(),
                engine=engine,
            )
        )
        graph = _graph_from_system(ts, invariant, span, fault_actions)

    doomed = _classify(graph)
    x_uniform, sweeps_uniform, conv_uniform, path = _solve(
        graph, doomed, None, tol, max_sweeps
    )
    if graph.fault_edge is not None:
        weights = _edge_weights(graph.fault_edge, fault_rate)
        x_weighted, sweeps_weighted, conv_weighted, _ = _solve(
            graph, doomed, weights, tol, max_sweeps
        )
    else:
        x_weighted = x_uniform
        sweeps_weighted, conv_weighted = 0, True
    adversarial = _adversarial_values(
        graph.n, graph.offsets, graph.targets, graph.is_target
    )

    n = graph.n
    span_indices = (
        range(n)
        if graph.in_span is None
        else [i for i in range(n) if graph.in_span[i]]
    )
    span_count = len(span_indices)
    target_count = sum(1 for i in range(n) if graph.is_target[i])
    doomed_span = sum(1 for i in span_indices if doomed[i])
    escape = (doomed_span / span_count) if span_count else 0.0

    finite_total = 0.0
    finite_count = 0
    max_steps = 0.0
    worst_case = 0.0
    weighted_total = 0.0
    for i in span_indices:
        if doomed[i]:
            max_steps = math.inf
        else:
            value = float(x_uniform[i])
            finite_total += value
            finite_count += 1
            if value > max_steps:
                max_steps = value
            weighted_total += float(x_weighted[i])
        if adversarial[i] > worst_case:
            worst_case = adversarial[i]
    mean_finite = finite_total / finite_count if finite_count else 0.0
    mean_steps = math.inf if doomed_span else (
        finite_total / span_count if span_count else 0.0
    )
    weighted_mean = math.inf if doomed_span else (
        weighted_total / span_count if span_count else 0.0
    )
    normalized = (
        mean_finite / (mean_finite + span_count) if span_count else 0.0
    )
    score = escape + (1.0 - escape) * normalized

    iterations = sweeps_uniform + sweeps_weighted
    converged = conv_uniform and conv_weighted
    ok = converged and doomed_span == 0 and not math.isinf(worst_case)
    seconds = time.perf_counter() - started

    if metrics is not None:
        metrics.counter("quantitative.solves").add()
        metrics.counter("quantitative.sweeps").add(iterations)
        metrics.timer("quantitative.solve").record(seconds)
    if tracer is not None:
        tracer.emit(
            ev.QUANTITATIVE_SOLVE,
            case=name,
            states=n,
            span_states=span_count,
            doomed=doomed_span,
            iterations=iterations,
            path=path,
            engine=graph.engine,
            seconds=seconds,
        )

    return QuantitativeReport(
        case=name,
        ok=ok,
        engine=graph.engine,
        path=path,
        states=n,
        target_states=target_count,
        span_states=span_count,
        doomed_states=doomed_span,
        escape_probability=escape,
        mean_steps=mean_steps,
        max_steps=max_steps,
        worst_case_steps=float(worst_case),
        weighted_mean_steps=weighted_mean,
        fault_rate=fault_rate,
        score=score,
        iterations=iterations,
        converged=converged,
        tol=tol,
        seconds=seconds,
    )


def _edge_weights(fault_edge, fault_rate: float):
    if HAVE_NUMPY and not FORCE_SCALAR:
        return _np.where(
            _np.asarray(fault_edge, dtype=bool), fault_rate, 1.0
        )
    return [fault_rate if flag else 1.0 for flag in fault_edge]
