"""Channels for message-passing refinements.

The paper's programs communicate through shared variables; Section 7.1
leaves "refinement of this program into one where the neighboring
processes communicate via message passing ... as an exercise to the
reader". This module provides the channel substrate for that exercise,
staying inside the library's guarded-command model so every verification
and simulation tool keeps working:

- :class:`SlotChannel` — a single-slot link. The slot holds one message
  or ``None``; a send *overwrites* the slot. Overwrite-on-send models a
  lossy bounded link, which is both realistic and the right fault model
  for stabilization (messages in transit are state like any other, and
  the paper's transient faults may corrupt them).
- :class:`FifoChannel` — a bounded FIFO, each possible queue content one
  domain value. Sends to a full queue drop the message (again: bounded
  lossy links). Used where ordering depth matters.

Both channel kinds expose their variable plus guard/effect helpers so
protocol builders read naturally.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence
from typing import Any, Hashable

from repro.core.domains import FiniteDomain
from repro.core.state import State
from repro.core.variables import Variable

__all__ = ["SlotChannel", "FifoChannel"]


class SlotChannel:
    """A single-slot, overwrite-on-send, lossy channel.

    The slot is one program variable whose domain is ``{None} ∪
    message_values``. ``None`` means the channel is empty.
    """

    def __init__(
        self,
        name: str,
        message_values: Sequence[Any],
        *,
        process: Hashable = None,
    ) -> None:
        self.name = name
        self.variable = Variable(
            name, FiniteDomain([None, *message_values]), process=process
        )

    def is_empty(self, state: State) -> bool:
        return state[self.name] is None

    def head(self, state: State) -> Any:
        """The message in the slot (``None`` when empty)."""
        return state[self.name]

    def send_value(self, compute: Callable[[State], Any]) -> Callable[[State], Any]:
        """An assignment right-hand side that (over)writes the slot."""
        return compute

    def receive_effect(self) -> Any:
        """The right-hand side that empties the slot."""
        return None

    def __repr__(self) -> str:
        return f"SlotChannel({self.name!r})"


class FifoChannel:
    """A bounded FIFO channel; the whole queue is one variable.

    The domain enumerates every tuple of messages up to ``capacity``
    long, so instances stay small: with ``m`` message values and capacity
    ``c`` the domain has ``(m^(c+1) - 1) / (m - 1)`` values.

    Sends append; a send to a full queue drops the message (bounded lossy
    link). Receives pop the head.
    """

    def __init__(
        self,
        name: str,
        message_values: Sequence[Any],
        capacity: int,
        *,
        process: Hashable = None,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.name = name
        self.capacity = capacity
        contents: list[tuple[Any, ...]] = []
        for length in range(capacity + 1):
            contents.extend(itertools.product(message_values, repeat=length))
        self.variable = Variable(name, FiniteDomain(contents), process=process)

    def is_empty(self, state: State) -> bool:
        return len(state[self.name]) == 0

    def is_full(self, state: State) -> bool:
        return len(state[self.name]) >= self.capacity

    def head(self, state: State) -> Any:
        queue = state[self.name]
        return queue[0] if queue else None

    def after_send(self, state: State, message: Any) -> tuple[Any, ...]:
        """The queue after appending ``message`` (dropped when full)."""
        queue = state[self.name]
        if len(queue) >= self.capacity:
            return queue
        return (*queue, message)

    def after_receive(self, state: State) -> tuple[Any, ...]:
        """The queue after popping the head."""
        queue = state[self.name]
        if not queue:
            raise ValueError(f"receive from empty channel {self.name!r}")
        return queue[1:]

    def __repr__(self) -> str:
        return f"FifoChannel({self.name!r}, capacity={self.capacity})"
