"""Message-passing substrate: bounded lossy channels as program variables."""

from repro.messaging.channels import FifoChannel, SlotChannel

__all__ = ["FifoChannel", "SlotChannel"]
