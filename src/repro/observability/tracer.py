"""The tracer: the single emission point for structured events.

Instrumented components accept an optional ``tracer=`` and call
:meth:`Tracer.emit` when one is attached. The contract with hot paths is
strict: **no tracer, no cost** — every instrumentation site guards its
emit with a single ``tracer is not None`` (or ``self.tracer is not
None``) check, so the default path of the engine, the schedulers and the
verification service executes no event construction at all. The overhead
test in ``tests/test_observability.py`` pins the stronger property that
results are bit-identical with and without a tracer.

A tracer fans each event out to its sinks in order, stamping a dense
sequence number and a monotonic timestamp. Tracers are deliberately not
thread- or process-safe: the engine and service are single-threaded, and
the process-pool batch runner aggregates worker timings through result
records instead of sharing a tracer across processes (see
:mod:`repro.verification.parallel`).
"""

from __future__ import annotations

import time
from collections.abc import Callable, Iterable

from repro.observability.events import TraceEvent
from repro.observability.sinks import RingBufferSink, Sink

__all__ = ["Tracer"]


class Tracer:
    """Emit structured events to pluggable sinks.

    Args:
        sinks: The sinks receiving every event, notified in order.
        clock: Timestamp source; defaults to ``time.perf_counter``.
    """

    def __init__(
        self,
        sinks: Iterable[Sink] = (),
        *,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.sinks: list[Sink] = list(sinks)
        self._clock = clock
        self._seq = 0

    @classmethod
    def buffered(cls, capacity: int | None = None) -> Tracer:
        """A tracer that records into a ring buffer (see :attr:`events`).

        The default ``capacity=None`` keeps every event — right for tests
        and short exploratory runs; bound it for long measurement runs.
        """
        return cls(sinks=[RingBufferSink(capacity=capacity)])

    def add_sink(self, sink: Sink) -> Sink:
        """Attach ``sink`` and return it."""
        self.sinks.append(sink)
        return sink

    def emit(self, kind: str, /, **fields) -> TraceEvent:
        """Create one event and deliver it to every sink.

        Field names ``seq``, ``time`` and ``kind`` are reserved (they
        would collide with the event's own keys in the flattened JSONL
        form) and raise :class:`ValueError`.
        """
        if "seq" in fields or "time" in fields or "kind" in fields:
            reserved = sorted({"seq", "time", "kind"} & fields.keys())
            raise ValueError(f"reserved event field name(s): {reserved}")
        event = TraceEvent(
            seq=self._seq, time=self._clock(), kind=kind, fields=fields
        )
        self._seq += 1
        for sink in self.sinks:
            sink.handle(event)
        return event

    @property
    def events(self) -> list[TraceEvent]:
        """Events retained by the first ring-buffer sink.

        Raises :class:`ValueError` when no ring buffer is attached —
        build the tracer with :meth:`buffered` (or add a
        :class:`~repro.observability.sinks.RingBufferSink`) to use this.
        """
        for sink in self.sinks:
            if isinstance(sink, RingBufferSink):
                return sink.events
        raise ValueError(
            "tracer has no RingBufferSink; construct it with Tracer.buffered()"
        )

    def events_of(self, *kinds: str) -> list[TraceEvent]:
        """The buffered events whose kind is one of ``kinds``."""
        wanted = set(kinds)
        return [event for event in self.events if event.kind in wanted]

    def close(self) -> None:
        """Close every sink (flushing file-backed ones)."""
        for sink in self.sinks:
            sink.close()

    def __enter__(self) -> Tracer:
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()
