"""Pluggable event sinks.

A sink receives every :class:`~repro.observability.events.TraceEvent` a
tracer emits. The protocol is two methods — :meth:`Sink.handle` per
event and an optional :meth:`Sink.close` — so anything from an in-memory
buffer to a network forwarder fits. Four built-ins cover the common
needs:

- :class:`RingBufferSink` — keep the last N events in memory (or all of
  them), for programmatic inspection and tests;
- :class:`JsonlSink` — one JSON object per line, the machine-readable
  interchange format behind the CLI's ``--trace FILE``;
- :class:`LogSink` — human-readable lines on a stream, for watching a
  run live;
- :class:`CountingSink` — event counts by kind, the cheapest possible
  aggregation (feeds ``--metrics``).
"""

from __future__ import annotations

import io
import json
import sys
from collections import deque
from pathlib import Path
from typing import TextIO

from repro.observability.events import TraceEvent

__all__ = ["Sink", "RingBufferSink", "JsonlSink", "LogSink", "CountingSink"]


class Sink:
    """Base class for event sinks."""

    def handle(self, event: TraceEvent) -> None:
        """Receive one event. Must not mutate it."""
        raise NotImplementedError

    def close(self) -> None:
        """Flush and release resources. Safe to call more than once."""


class RingBufferSink(Sink):
    """Keep the most recent ``capacity`` events in memory.

    Args:
        capacity: Maximum events retained; older events are evicted
            first. ``None`` retains everything (unbounded).
    """

    def __init__(self, capacity: int | None = 4096) -> None:
        self.capacity = capacity
        self._events: deque[TraceEvent] = deque(maxlen=capacity)

    def handle(self, event: TraceEvent) -> None:
        self._events.append(event)

    @property
    def events(self) -> list[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


class JsonlSink(Sink):
    """Write each event as one JSON line.

    Args:
        target: A path (opened and owned by the sink — closed by
            :meth:`close`) or an open text handle (borrowed — flushed but
            left open).
    """

    def __init__(self, target: str | Path | TextIO) -> None:
        if isinstance(target, (str, Path)):
            self._handle: TextIO = open(target, "w")
            self._owns_handle = True
        else:
            self._handle = target
            self._owns_handle = False

    def handle(self, event: TraceEvent) -> None:
        self._handle.write(json.dumps(event.as_dict(), default=_jsonable))
        self._handle.write("\n")

    def close(self) -> None:
        if self._handle.closed:
            return
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()


def _jsonable(value: object) -> object:
    """Fallback serializer: sets become sorted lists, the rest ``str``."""
    if isinstance(value, (set, frozenset)):
        return sorted(str(item) for item in value)
    return str(value)


class LogSink(Sink):
    """Human-readable one-line-per-event log on a stream.

    Args:
        stream: Defaults to ``sys.stderr`` (resolved lazily at each
            write, so pytest's capture and redirections behave).
    """

    def __init__(self, stream: TextIO | None = None) -> None:
        self._stream = stream

    def handle(self, event: TraceEvent) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        print(str(event), file=stream)

    def close(self) -> None:
        stream = self._stream if self._stream is not None else sys.stderr
        if not isinstance(stream, io.IOBase) or not stream.closed:
            stream.flush()


class CountingSink(Sink):
    """Count events by kind. ``counts`` maps kind -> occurrences."""

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}

    def handle(self, event: TraceEvent) -> None:
        self.counts[event.kind] = self.counts.get(event.kind, 0) + 1

    def total(self) -> int:
        return sum(self.counts.values())
