"""Run reports: the aggregated, renderable face of the metrics.

A :class:`RunReport` is an immutable snapshot of counters and timers
plus free-form metadata — the thing a CLI ``--metrics`` flag prints, a
benchmark attaches to ``BENCH_verification.json``, and a test asserts
against. It is deliberately dumb: plain dicts in, a stable ``as_dict``
schema and an aligned ``describe`` text out.

The ``as_dict`` schema is::

    {"meta": {...}, "counters": {name: int},
     "timers": {name: {"count", "total", "mean", "min", "max"}}}

and is treated as stable: the CLI JSON tests pin it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:
    from repro.observability.metrics import MetricsRegistry

__all__ = ["RunReport"]


@dataclass(frozen=True)
class RunReport:
    """An immutable counters + timers + metadata snapshot.

    Attributes:
        counters: Final counts by name.
        timers: Timer snapshots by name (``count/total/mean/min/max``,
            seconds).
        meta: Context for a human reading the report — what ran, with
            which parameters, total wall-clock.
    """

    counters: dict[str, int] = field(default_factory=dict)
    timers: dict[str, dict[str, float]] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_registry(cls, registry: MetricsRegistry, **meta) -> RunReport:
        """Snapshot a registry's current counters and timers."""
        return cls(
            counters={
                name: counter.count
                for name, counter in sorted(registry.counters.items())
            },
            timers={
                name: timer.snapshot()
                for name, timer in sorted(registry.timers.items())
            },
            meta=dict(meta),
        )

    def as_dict(self) -> dict[str, Any]:
        """The stable JSON-able form (see module docstring)."""
        return {
            "meta": dict(self.meta),
            "counters": dict(self.counters),
            "timers": {name: dict(stats) for name, stats in self.timers.items()},
        }

    def describe(self) -> str:
        """Aligned human-readable rendering."""
        lines: list[str] = []
        if self.meta:
            pairs = "  ".join(f"{k}={v}" for k, v in self.meta.items())
            lines.append(f"report: {pairs}")
        if self.counters:
            lines.append("counters:")
            width = max(len(name) for name in self.counters)
            for name, count in self.counters.items():
                lines.append(f"  {name.ljust(width)}  {count}")
        if self.timers:
            lines.append("timers:")
            width = max(len(name) for name in self.timers)
            for name, stats in self.timers.items():
                lines.append(
                    f"  {name.ljust(width)}  n={stats['count']:<4.0f}"
                    f" total={stats['total']:.4f}s"
                    f" mean={stats['mean']:.4f}s"
                    f" min={stats['min']:.4f}s"
                    f" max={stats['max']:.4f}s"
                )
        if not lines:
            lines.append("report: (empty)")
        return "\n".join(lines)
