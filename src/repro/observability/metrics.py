"""Metric primitives: counters, timers, and a registry.

Where events (:mod:`repro.observability.events`) record *what happened*,
metrics record *how much and how long*. Two primitives suffice for the
library's needs:

- :class:`Counter` — a named monotonically increasing integer (cache
  hits, faults injected, tasks completed);
- :class:`Timer` — accumulated wall-clock observations with count,
  total, min, max and mean (per-verdict verification time, per-worker
  task time).

A :class:`MetricsRegistry` owns a namespace of both, created on first
use, and renders into a :class:`~repro.observability.report.RunReport`.
All primitives are plain attribute arithmetic — no locks, no I/O — so
recording is cheap enough for per-call instrumentation of the
verification service.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["Counter", "Timer", "MetricsRegistry"]


class Counter:
    """A named monotonically increasing count."""

    __slots__ = ("name", "count")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0

    def add(self, amount: int = 1) -> int:
        """Increment by ``amount`` (default 1) and return the new count."""
        self.count += amount
        return self.count

    def __int__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, count={self.count})"


class Timer:
    """Accumulated wall-clock observations for one named operation."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Fold one observation (in seconds) into the aggregate."""
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds

    @contextmanager
    def time(self):
        """Context manager recording the wall-clock of its block."""
        started = time.perf_counter()
        try:
            yield self
        finally:
            self.record(time.perf_counter() - started)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        """JSON-able summary: count, total, mean, min, max (seconds)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }

    def __repr__(self) -> str:
        return (
            f"Timer({self.name!r}, count={self.count}, "
            f"total={self.total:.6f}s)"
        )


class MetricsRegistry:
    """A namespace of counters and timers, created on first use."""

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.timers: dict[str, Timer] = {}

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, creating it at zero if new."""
        counter = self.counters.get(name)
        if counter is None:
            counter = self.counters[name] = Counter(name)
        return counter

    def timer(self, name: str) -> Timer:
        """The timer named ``name``, creating it empty if new."""
        timer = self.timers.get(name)
        if timer is None:
            timer = self.timers[name] = Timer(name)
        return timer

    def report(self, **meta):
        """Render into a :class:`~repro.observability.report.RunReport`."""
        from repro.observability.report import RunReport

        return RunReport.from_registry(self, **meta)
