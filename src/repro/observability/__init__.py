"""Observability: structured tracing, metrics, and run reports.

A lightweight, zero-dependency instrumentation subsystem for the whole
library. Three layers:

- **events** — every instrumented component (the simulation engine, the
  schedulers, the verification service, the batch pool) emits namespaced
  :class:`TraceEvent` records through an optional :class:`Tracer` to
  pluggable sinks (:class:`RingBufferSink`, :class:`JsonlSink`,
  :class:`LogSink`, :class:`CountingSink`);
- **metrics** — :class:`Counter` and :class:`Timer` primitives collected
  in a :class:`MetricsRegistry`;
- **reports** — a :class:`RunReport` snapshot with a stable JSON schema
  and an aligned text rendering, used by the CLI's ``--metrics`` flag
  and attached to ``BENCH_verification.json`` by the benchmarks.

The golden rule: instrumentation is **opt-in and free when off**. Every
hook defaults to ``None`` and every emission site is guarded by a single
``is not None`` check, so un-traced hot paths behave exactly as before
(pinned by the overhead test). See ``docs/OBSERVABILITY.md`` for the
event taxonomy and a worked example.

Quickstart::

    from repro.observability import Tracer

    tracer = Tracer.buffered()
    result = run(program, initial, scheduler, max_steps=1000,
                 target=invariant, tracer=tracer)
    for event in tracer.events_of("fault.injected", "target.established"):
        print(event)
"""

from repro.observability.events import (
    ABSINT_FINISH,
    ABSINT_TRANSFER,
    ACTION_FIRED,
    BATCH_FINISH,
    BATCH_START,
    CACHE_HIT,
    CACHE_MISS,
    CONSTRAINT_ESTABLISHED,
    CONSTRAINT_VIOLATED,
    EVENT_KINDS,
    FAULT_INJECTED,
    INTERFERENCE_DISCHARGED,
    INTERFERENCE_FINISH,
    LINT_DIAGNOSTIC,
    LINT_FINISH,
    LINT_START,
    RUN_FINISH,
    RUN_START,
    SCHEDULER_STEP,
    SERVICE_BATCH_DISPATCH,
    SERVICE_REQUEST_DEDUPED,
    SERVICE_REQUEST_FINISH,
    SERVICE_REQUEST_START,
    STORE_EVICT,
    STORE_HIT,
    STORE_MISS,
    TARGET_ESTABLISHED,
    TARGET_VIOLATED,
    WORKER_TASK_FINISH,
    WORKER_TASK_START,
    TraceEvent,
)
from repro.observability.metrics import Counter, MetricsRegistry, Timer
from repro.observability.report import RunReport
from repro.observability.sinks import (
    CountingSink,
    JsonlSink,
    LogSink,
    RingBufferSink,
    Sink,
)
from repro.observability.tracer import Tracer

__all__ = [
    "ABSINT_FINISH",
    "ABSINT_TRANSFER",
    "ACTION_FIRED",
    "BATCH_FINISH",
    "BATCH_START",
    "CACHE_HIT",
    "CACHE_MISS",
    "CONSTRAINT_ESTABLISHED",
    "CONSTRAINT_VIOLATED",
    "Counter",
    "CountingSink",
    "EVENT_KINDS",
    "FAULT_INJECTED",
    "INTERFERENCE_DISCHARGED",
    "INTERFERENCE_FINISH",
    "JsonlSink",
    "LINT_DIAGNOSTIC",
    "LINT_FINISH",
    "LINT_START",
    "LogSink",
    "MetricsRegistry",
    "RingBufferSink",
    "RUN_FINISH",
    "RUN_START",
    "RunReport",
    "SCHEDULER_STEP",
    "SERVICE_BATCH_DISPATCH",
    "SERVICE_REQUEST_DEDUPED",
    "SERVICE_REQUEST_FINISH",
    "SERVICE_REQUEST_START",
    "Sink",
    "STORE_EVICT",
    "STORE_HIT",
    "STORE_MISS",
    "TARGET_ESTABLISHED",
    "TARGET_VIOLATED",
    "Timer",
    "TraceEvent",
    "Tracer",
    "WORKER_TASK_FINISH",
    "WORKER_TASK_START",
]
