"""Structured trace events and the event taxonomy.

Every instrumented component of the library reports what it did as a
:class:`TraceEvent` — an immutable, timestamped, JSON-able record with a
namespaced ``kind`` and free-form ``fields``. The taxonomy below is the
complete vocabulary emitted by the built-in instrumentation; sinks and
analysis code can rely on these exact strings (``docs/OBSERVABILITY.md``
documents the fields each kind carries).

Event kinds are plain strings, namespaced ``component.what``:

- simulation engine: :data:`RUN_START`, :data:`ACTION_FIRED`,
  :data:`FAULT_INJECTED`, :data:`TARGET_ESTABLISHED`,
  :data:`TARGET_VIOLATED`, :data:`CONSTRAINT_ESTABLISHED`,
  :data:`CONSTRAINT_VIOLATED`, :data:`RUN_FINISH`;
- schedulers: :data:`SCHEDULER_STEP`;
- verification service: :data:`CACHE_HIT`, :data:`CACHE_MISS`;
- batch verification: :data:`BATCH_START`, :data:`WORKER_TASK_START`,
  :data:`WORKER_TASK_FINISH`, :data:`BATCH_FINISH`;
- protocol linter: :data:`LINT_START`, :data:`LINT_DIAGNOSTIC`,
  :data:`LINT_FINISH`;
- abstract interpreter: :data:`ABSINT_TRANSFER`, :data:`ABSINT_FINISH`;
- interference analysis: :data:`INTERFERENCE_DISCHARGED`,
  :data:`INTERFERENCE_FINISH`;
- packed exploration kernel: :data:`KERNEL_BUILD`, :data:`KERNEL_SWEEP`,
  :data:`KERNEL_SHARD_MERGED`, :data:`KERNEL_MEM`;
- quantitative tolerance: :data:`QUANTITATIVE_SOLVE`;
- compositional certifier: :data:`COMPOSITIONAL_START`,
  :data:`COMPOSITIONAL_CERTIFIED`, :data:`COMPOSITIONAL_REFUSED`;
- verification daemon: :data:`SERVICE_REQUEST_START`,
  :data:`SERVICE_REQUEST_FINISH`, :data:`SERVICE_REQUEST_DEDUPED`,
  :data:`SERVICE_BATCH_DISPATCH`;
- verdict store: :data:`STORE_HIT`, :data:`STORE_MISS`,
  :data:`STORE_EVICT`.

Custom emitters are free to add their own kinds; the constants exist so
the built-in ones are greppable and typo-proof.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "ABSINT_FINISH",
    "ABSINT_TRANSFER",
    "ACTION_FIRED",
    "BATCH_FINISH",
    "BATCH_START",
    "CACHE_HIT",
    "CACHE_MISS",
    "COMPOSITIONAL_CERTIFIED",
    "COMPOSITIONAL_REFUSED",
    "COMPOSITIONAL_START",
    "CONSTRAINT_ESTABLISHED",
    "CONSTRAINT_VIOLATED",
    "EVENT_KINDS",
    "FAULT_INJECTED",
    "INTERFERENCE_DISCHARGED",
    "INTERFERENCE_FINISH",
    "KERNEL_BUILD",
    "KERNEL_MEM",
    "KERNEL_SHARD_MERGED",
    "KERNEL_SWEEP",
    "LINT_DIAGNOSTIC",
    "LINT_FINISH",
    "LINT_START",
    "QUANTITATIVE_SOLVE",
    "RUN_FINISH",
    "RUN_START",
    "SCHEDULER_STEP",
    "SERVICE_BATCH_DISPATCH",
    "SERVICE_REQUEST_DEDUPED",
    "SERVICE_REQUEST_FINISH",
    "SERVICE_REQUEST_START",
    "STORE_EVICT",
    "STORE_HIT",
    "STORE_MISS",
    "TARGET_ESTABLISHED",
    "TARGET_VIOLATED",
    "TraceEvent",
    "WORKER_TASK_FINISH",
    "WORKER_TASK_START",
]

#: A simulation run began (program, scheduler, step budget).
RUN_START = "run.start"
#: A simulation run ended (steps, faults, stabilization indices).
RUN_FINISH = "run.finish"
#: The scheduler executed program action(s) at a step.
ACTION_FIRED = "action.fired"
#: A fault scenario applied a fault before a program step.
FAULT_INJECTED = "fault.injected"
#: The run's target predicate (usually the invariant ``S``) began to hold.
TARGET_ESTABLISHED = "target.established"
#: The target predicate stopped holding (a fault, or transit through ``T``).
TARGET_VIOLATED = "target.violated"
#: A watched constraint predicate began to hold (``watch=`` on the engine).
CONSTRAINT_ESTABLISHED = "constraint.established"
#: A watched constraint predicate stopped holding.
CONSTRAINT_VIOLATED = "constraint.violated"
#: A daemon chose among the enabled actions at a step.
SCHEDULER_STEP = "scheduler.step"
#: The verification service answered from its cache (memory or disk).
CACHE_HIT = "cache.hit"
#: The verification service had to compute a fresh record.
CACHE_MISS = "cache.miss"
#: A batch verification job started (cases, workers).
BATCH_START = "batch.start"
#: One batch task began (only observable for in-process execution).
WORKER_TASK_START = "worker.task.start"
#: One batch task finished (worker identity, wall-clock).
WORKER_TASK_FINISH = "worker.task.finish"
#: A batch verification job finished (wall-clock, cache totals).
BATCH_FINISH = "batch.finish"
#: The linter began analysing a subject (subject, probe count).
LINT_START = "lint.start"
#: The linter recorded one finding (code, severity, subject, message).
LINT_DIAGNOSTIC = "lint.diagnostic"
#: The linter finished a subject (finding counts, wall-clock).
LINT_FINISH = "lint.finish"
#: The abstract interpreter analysed one action's transfer function
#: (subject, guard satisfiability, proofs attempted).
ABSINT_TRANSFER = "staticcheck.absint.transfer"
#: The abstract-interpretation pass finished (actions analysed, proofs).
ABSINT_FINISH = "staticcheck.absint.finish"
#: One proof obligation was discharged statically (obligation, subject,
#: rule, truth-table rows).
INTERFERENCE_DISCHARGED = "staticcheck.interference.discharged"
#: The interference pass finished (pairs examined, findings).
INTERFERENCE_FINISH = "staticcheck.interference.finish"
#: The packed kernel compiled a program (codec size, action modes, time).
KERNEL_BUILD = "kernel.build"
#: A vectorized full-space sweep ran (states, shard count, edge count).
KERNEL_SWEEP = "kernel.sweep.vectorized"
#: Per-shard CSR fragments were merged into one system (shard count).
KERNEL_SHARD_MERGED = "kernel.shard.merged"
#: A full-space sweep accounted its memory (path, peak bytes, code dtype
#: width, streaming flag, transfer mode).
KERNEL_MEM = "kernel.mem.sweep"
#: The quantitative analyzer solved one instance (case, states, span
#: and doomed counts, value-iteration sweeps, execution path, engine,
#: wall-clock).
QUANTITATIVE_SOLVE = "quantitative.solve"
#: The compositional certifier began on a design (design, fairness).
COMPOSITIONAL_START = "compositional.start"
#: Every obligation discharged: a certificate was emitted (theorem,
#: obligation count, largest projection).
COMPOSITIONAL_CERTIFIED = "compositional.certified"
#: An obligation could not be discharged locally (the named refusal);
#: callers fall back to full exploration.
COMPOSITIONAL_REFUSED = "compositional.refused"
#: The daemon accepted one HTTP request (endpoint, fingerprint prefix).
SERVICE_REQUEST_START = "service.request.start"
#: The daemon answered one HTTP request (status, wall-clock, cache layer).
SERVICE_REQUEST_FINISH = "service.request.finish"
#: An in-flight duplicate coalesced onto an earlier request's future.
SERVICE_REQUEST_DEDUPED = "service.request.deduped"
#: The daemon flushed a batch of cache-missing requests onto the pool.
SERVICE_BATCH_DISPATCH = "service.batch.dispatch"
#: The verdict store answered from its warm or disk tier.
STORE_HIT = "store.hit"
#: The verdict store had no (readable) entry for the fingerprint.
STORE_MISS = "store.miss"
#: The verdict store evicted an LRU entry to stay inside its budget.
STORE_EVICT = "store.evict"

#: Every kind the built-in instrumentation emits.
EVENT_KINDS: tuple[str, ...] = (
    RUN_START,
    RUN_FINISH,
    ACTION_FIRED,
    FAULT_INJECTED,
    TARGET_ESTABLISHED,
    TARGET_VIOLATED,
    CONSTRAINT_ESTABLISHED,
    CONSTRAINT_VIOLATED,
    SCHEDULER_STEP,
    CACHE_HIT,
    CACHE_MISS,
    BATCH_START,
    WORKER_TASK_START,
    WORKER_TASK_FINISH,
    BATCH_FINISH,
    LINT_START,
    LINT_DIAGNOSTIC,
    LINT_FINISH,
    ABSINT_TRANSFER,
    ABSINT_FINISH,
    INTERFERENCE_DISCHARGED,
    INTERFERENCE_FINISH,
    KERNEL_BUILD,
    KERNEL_SWEEP,
    KERNEL_SHARD_MERGED,
    KERNEL_MEM,
    QUANTITATIVE_SOLVE,
    COMPOSITIONAL_START,
    COMPOSITIONAL_CERTIFIED,
    COMPOSITIONAL_REFUSED,
    SERVICE_REQUEST_START,
    SERVICE_REQUEST_FINISH,
    SERVICE_REQUEST_DEDUPED,
    SERVICE_BATCH_DISPATCH,
    STORE_HIT,
    STORE_MISS,
    STORE_EVICT,
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured event.

    Attributes:
        seq: Position in the emitting tracer's stream (0-based, dense).
        time: Tracer-clock timestamp (``time.perf_counter`` by default, so
            differences are wall-clock seconds; absolute values are only
            meaningful within one process).
        kind: Namespaced event kind — one of :data:`EVENT_KINDS` for the
            built-in instrumentation.
        fields: Kind-specific payload. Values must be JSON-able for the
            JSONL sink; the built-in instrumentation sticks to strings,
            numbers, booleans and tuples of strings. The names ``seq``,
            ``time`` and ``kind`` are reserved (they would collide in the
            flattened form).
    """

    seq: int
    time: float
    kind: str
    fields: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """The flattened JSON-able form used by the JSONL sink."""
        return {"seq": self.seq, "time": self.time, "kind": self.kind, **self.fields}

    def __str__(self) -> str:
        payload = " ".join(f"{k}={v!r}" for k, v in self.fields.items())
        return f"[{self.seq:>5} {self.time:12.6f}] {self.kind} {payload}".rstrip()
