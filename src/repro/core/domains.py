"""Variable domains.

The paper's program model (Section 2) gives every variable a predefined
nonempty domain. This module provides the domain kinds needed by the
paper's designs and by the protocol library:

- :class:`FiniteDomain` — an explicit finite set of values.
- :class:`BooleanDomain` — ``{False, True}`` (session numbers ``sn.j``).
- :class:`EnumDomain` — a named finite domain (colors ``{green, red}``).
- :class:`IntegerRangeDomain` — ``[lo, hi]`` inclusive (bounded counters).
- :class:`ModularDomain` — ``0 .. modulus-1`` with wraparound helpers
  (Dijkstra's K-state token ring).
- :class:`IntegerDomain` — the unbounded integers, for the paper's
  token-ring formulation; it cannot be enumerated, so programs using it
  are exercised by simulation rather than exhaustive verification.

Domains are immutable value objects: they compare by content and can be
shared freely between variables.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from typing import Any

from repro.core.errors import StateSpaceTooLargeError

__all__ = [
    "Domain",
    "FiniteDomain",
    "BooleanDomain",
    "EnumDomain",
    "IntegerRangeDomain",
    "ModularDomain",
    "IntegerDomain",
]


class Domain:
    """Abstract base class for variable domains.

    Subclasses implement ``__contains__`` and, when finite, ``values``.
    """

    @property
    def is_finite(self) -> bool:
        """Whether the domain has finitely many values."""
        raise NotImplementedError

    def __contains__(self, value: Any) -> bool:
        raise NotImplementedError

    def values(self) -> Iterator[Any]:
        """Iterate over every value of the domain.

        Raises:
            StateSpaceTooLargeError: if the domain is infinite.
        """
        raise StateSpaceTooLargeError(
            f"domain {self!r} is infinite and cannot be enumerated"
        )

    def size(self) -> int | None:
        """Number of values, or ``None`` when infinite."""
        return None

    def sample(self, rng: Any) -> Any:
        """Draw a uniformly random value using ``rng`` (a ``random.Random``).

        Infinite domains draw from a documented bounded window instead,
        since a uniform draw over all integers does not exist.
        """
        raise NotImplementedError


class FiniteDomain(Domain):
    """An explicit, finite, nonempty set of values.

    Values are kept in the order given (first occurrence wins), so
    enumeration order is deterministic.
    """

    __slots__ = ("_values", "_value_set")

    def __init__(self, values: Sequence[Any]) -> None:
        ordered: list[Any] = []
        seen: set[Any] = set()
        for value in values:
            if value not in seen:
                seen.add(value)
                ordered.append(value)
        if not ordered:
            raise ValueError("a domain must be nonempty")
        self._values = tuple(ordered)
        self._value_set = frozenset(self._values)

    @property
    def is_finite(self) -> bool:
        return True

    def __contains__(self, value: Any) -> bool:
        return value in self._value_set

    def values(self) -> Iterator[Any]:
        return iter(self._values)

    def size(self) -> int:
        return len(self._values)

    def sample(self, rng: Any) -> Any:
        return rng.choice(self._values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FiniteDomain):
            return NotImplemented
        return self._values == other._values

    def __hash__(self) -> int:
        return hash(self._values)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({list(self._values)!r})"


class BooleanDomain(FiniteDomain):
    """The domain ``{False, True}``, used for session numbers ``sn.j``."""

    def __init__(self) -> None:
        super().__init__((False, True))

    def __repr__(self) -> str:
        return "BooleanDomain()"


class EnumDomain(FiniteDomain):
    """A finite domain of named symbolic values, e.g. ``{green, red}``."""

    def __init__(self, *names: str) -> None:
        super().__init__(names)

    def __repr__(self) -> str:
        return f"EnumDomain({', '.join(map(repr, self.values()))})"


class IntegerRangeDomain(FiniteDomain):
    """All integers in ``[lo, hi]`` inclusive."""

    def __init__(self, lo: int, hi: int) -> None:
        if lo > hi:
            raise ValueError(f"empty integer range [{lo}, {hi}]")
        self.lo = lo
        self.hi = hi
        super().__init__(range(lo, hi + 1))

    def sample(self, rng: Any) -> int:
        return rng.randint(self.lo, self.hi)

    def __repr__(self) -> str:
        return f"IntegerRangeDomain({self.lo}, {self.hi})"


class ModularDomain(IntegerRangeDomain):
    """Integers ``0 .. modulus-1`` with modular increment helpers.

    This is the domain of ``x.j`` in Dijkstra's K-state token ring, the
    finite-state variant of the paper's Section 7.1 design used for
    exhaustive verification.
    """

    def __init__(self, modulus: int) -> None:
        if modulus < 1:
            raise ValueError("modulus must be at least 1")
        self.modulus = modulus
        super().__init__(0, modulus - 1)

    def succ(self, value: int) -> int:
        """The value plus one, modulo the modulus."""
        return (value + 1) % self.modulus

    def __repr__(self) -> str:
        return f"ModularDomain({self.modulus})"


class IntegerDomain(Domain):
    """The unbounded integers.

    Used by the paper's original token-ring formulation where ``x.0`` is
    incremented without bound. ``sample`` draws from ``[sample_lo,
    sample_hi]`` because no uniform distribution over all integers exists;
    the window is part of the domain object so experiments are explicit
    about it.
    """

    __slots__ = ("sample_lo", "sample_hi")

    def __init__(self, sample_lo: int = -100, sample_hi: int = 100) -> None:
        if sample_lo > sample_hi:
            raise ValueError("empty sampling window")
        self.sample_lo = sample_lo
        self.sample_hi = sample_hi

    @property
    def is_finite(self) -> bool:
        return False

    def __contains__(self, value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    def sample(self, rng: Any) -> int:
        return rng.randint(self.sample_lo, self.sample_hi)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntegerDomain):
            return NotImplemented
        return (self.sample_lo, self.sample_hi) == (other.sample_lo, other.sample_hi)

    def __hash__(self) -> int:
        return hash(("IntegerDomain", self.sample_lo, self.sample_hi))

    def __repr__(self) -> str:
        return f"IntegerDomain(sample_lo={self.sample_lo}, sample_hi={self.sample_hi})"
