"""Machine-checked validators for the paper's three theorems.

Each validator takes a candidate triple, the convergence design, and a
finite set of states over which the preservation obligations are
discharged exhaustively (see :mod:`repro.core.preservation` for the
substitution of hand proofs by exhaustive checks). It returns a
:class:`TheoremCertificate` listing every condition with a pass/fail
verdict and concrete witnesses on failure.

The certificates check the theorems' antecedents *plus* the standing
design-method obligations from Section 3 that the theorems assume:

- each convergence action is enabled whenever its constraint is violated
  (otherwise a violation could persist forever);
- each convergence action establishes its constraint in one step;
- each convergence action preserves the fault-span ``T``;
- a *merged* convergence action (one whose guard is weaker than the
  negation of its constraint, like the paper's combined propagate action
  in Section 5.1) behaves as a closure action when its constraint already
  holds: it preserves every constraint from such states.

When a certificate is valid, the corresponding theorem guarantees the
augmented program is T-tolerant for S — a guarantee the verification
subsystem (:mod:`repro.verification`) can independently confirm by model
checking.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.core.actions import Action
from repro.core.candidate import CandidateTriple
from repro.core.constraint_graph import ConstraintGraph, GraphNode
from repro.core.constraints import Constraint, ConvergenceBinding
from repro.core.errors import DesignError
from repro.core.predicates import Predicate, all_of
from repro.core.preservation import PreservationViolation, preserves
from repro.core.state import State

__all__ = [
    "ConditionResult",
    "TheoremCertificate",
    "find_linear_order",
    "validate_theorem1",
    "validate_theorem2",
    "validate_theorem3",
]


@dataclass(frozen=True)
class ConditionResult:
    """One checked condition of a theorem's antecedent."""

    name: str
    ok: bool
    detail: str = ""
    violations: tuple[PreservationViolation, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return self.ok


@dataclass(frozen=True)
class TheoremCertificate:
    """The outcome of validating one theorem's sufficient conditions.

    ``ok`` is true iff every condition passed, in which case the theorem
    guarantees that the augmented program is T-tolerant for S.
    """

    theorem: str
    ok: bool
    conditions: tuple[ConditionResult, ...]

    def __bool__(self) -> bool:
        return self.ok

    def failures(self) -> list[ConditionResult]:
        return [condition for condition in self.conditions if not condition.ok]

    def describe(self) -> str:
        lines = [f"{self.theorem}: {'VALID' if self.ok else 'INVALID'}"]
        for condition in self.conditions:
            mark = "ok " if condition.ok else "FAIL"
            lines.append(f"  [{mark}] {condition.name}")
            if condition.detail and not condition.ok:
                lines.append(f"         {condition.detail}")
            for violation in condition.violations:
                lines.append(f"         witness: {violation.describe()}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """JSON-able summary (the :class:`~repro.api.Verdict` shape)."""
        return {
            "theorem": self.theorem,
            "ok": self.ok,
            "conditions": [
                {"name": c.name, "ok": c.ok, "detail": c.detail}
                for c in self.conditions
            ],
        }


class _PreservationCache:
    """Memoizes preservation checks keyed by (action, predicate, context).

    The theorem validators re-check the same (action, constraint) pairs in
    several conditions; over large state sets the memoization matters.
    """

    def __init__(self, states: Sequence[State]) -> None:
        self._states = states
        self._cache: dict[tuple[int, int, int | None], bool] = {}
        self._witnesses: dict[tuple[int, int, int | None], tuple] = {}

    def preserves(
        self,
        action: Action,
        predicate: Predicate,
        given: Predicate | None,
    ) -> tuple[bool, tuple[PreservationViolation, ...]]:
        key = (id(action), id(predicate), id(given) if given is not None else None)
        if key not in self._cache:
            result = preserves(action, predicate, self._states, given=given)
            self._cache[key] = result.ok
            self._witnesses[key] = result.violations
        return self._cache[key], self._witnesses[key]


def find_linear_order(
    bindings: Sequence[ConvergenceBinding],
    states: Sequence[State],
    *,
    given: Predicate | None = None,
    cache: _PreservationCache | None = None,
) -> list[ConvergenceBinding] | None:
    """Find a linear order in which each action preserves the constraints
    of the preceding actions (the third antecedent of Theorem 2).

    Greedy and complete: any binding whose constraint is preserved by all
    other bindings' actions can safely go first, and removing it leaves a
    set that still admits a valid order iff one existed. Returns the order
    or ``None`` when none exists.
    """
    cache = cache if cache is not None else _PreservationCache(states)
    remaining = list(bindings)
    order: list[ConvergenceBinding] = []
    while remaining:
        pick = None
        for candidate_binding in remaining:
            others = [b for b in remaining if b is not candidate_binding]
            if all(
                cache.preserves(
                    other.action, candidate_binding.constraint.predicate, given
                )[0]
                for other in others
            ):
                pick = candidate_binding
                break
        if pick is None:
            return None
        order.append(pick)
        remaining.remove(pick)
    return order


# ---------------------------------------------------------------------------
# Shared design-method obligations
# ---------------------------------------------------------------------------


def _closure_preserves_constraints(
    candidate: CandidateTriple,
    constraints: Sequence[Constraint],
    states: Sequence[State],
    given: Predicate | None,
    cache: _PreservationCache,
    *,
    label: str,
    exempt_names: frozenset[str] = frozenset(),
) -> ConditionResult:
    """Check that closure actions preserve the given constraints.

    ``exempt_names`` skips closure actions that are *identified with* one
    of the layer's own convergence actions (the paper's Section 7.1: "the
    second closure action is identical to the convergence action of the
    second layer; hence execution of the one has the same effect as that
    of the other") — those executions are covered by the layer's
    linear-order and rank structure instead.
    """
    all_witnesses: list[PreservationViolation] = []
    failed: list[str] = []
    for action in candidate.program.actions:
        if action.name in exempt_names:
            continue
        for constraint in constraints:
            ok, witnesses = cache.preserves(action, constraint.predicate, given)
            if not ok:
                failed.append(f"{action.name} breaks {constraint.name}")
                all_witnesses.extend(witnesses[:1])
    return ConditionResult(
        name=label,
        ok=not failed,
        detail="; ".join(failed),
        violations=tuple(all_witnesses[:5]),
    )


def _binding_obligations(
    candidate: CandidateTriple,
    bindings: Sequence[ConvergenceBinding],
    states: Sequence[State],
    given: Predicate | None,
    cache: _PreservationCache,
) -> list[ConditionResult]:
    """The standing Section 3 obligations on each convergence binding."""
    span = candidate.fault_span

    def context(state: State) -> bool:
        return span(state) and (given is None or given(state))

    enabled_fail: list[str] = []
    establish_fail: list[str] = []
    for binding in bindings:
        for state in states:
            if not context(state):
                continue
            if not binding.constraint.holds(state) and not binding.action.enabled(state):
                enabled_fail.append(
                    f"{binding.action.name} disabled while {binding.constraint.name} "
                    f"violated at {state!r}"
                )
                break
        for state in states:
            if not context(state):
                continue
            if binding.action.enabled(state):
                successor = binding.action.execute(state)
                if not binding.constraint.holds(successor):
                    establish_fail.append(
                        f"{binding.action.name} leaves {binding.constraint.name} "
                        f"violated from {state!r}"
                    )
                    break

    span_witnesses: list[PreservationViolation] = []
    span_fail: list[str] = []
    for binding in bindings:
        ok, witnesses = cache.preserves(binding.action, span, given)
        if not ok:
            span_fail.append(binding.action.name)
            span_witnesses.extend(witnesses[:1])

    merged_fail: list[str] = []
    merged_witnesses: list[PreservationViolation] = []
    all_constraints = candidate.constraints
    for binding in bindings:
        own = binding.constraint.predicate
        context_pred = own if given is None else (own & given)
        for constraint in all_constraints:
            ok, witnesses = cache.preserves(
                binding.action, constraint.predicate, context_pred
            )
            if not ok:
                merged_fail.append(
                    f"{binding.action.name} breaks {constraint.name} when "
                    f"{binding.constraint.name} already holds"
                )
                merged_witnesses.extend(witnesses[:1])

    return [
        ConditionResult(
            name="each convergence action is enabled whenever its constraint is violated",
            ok=not enabled_fail,
            detail="; ".join(enabled_fail[:3]),
        ),
        ConditionResult(
            name="each convergence action establishes its constraint in one step",
            ok=not establish_fail,
            detail="; ".join(establish_fail[:3]),
        ),
        ConditionResult(
            name="each convergence action preserves the fault-span T",
            ok=not span_fail,
            detail="; ".join(span_fail[:5]),
            violations=tuple(span_witnesses[:5]),
        ),
        ConditionResult(
            name=(
                "merged convergence actions behave as closure actions when their "
                "constraint holds (preserve every constraint)"
            ),
            ok=not merged_fail,
            detail="; ".join(merged_fail[:3]),
            violations=tuple(merged_witnesses[:5]),
        ),
    ]


# ---------------------------------------------------------------------------
# Theorem 1
# ---------------------------------------------------------------------------


def validate_theorem1(
    candidate: CandidateTriple,
    graph: ConstraintGraph,
    states: Sequence[State],
) -> TheoremCertificate:
    """Validate Theorem 1: out-tree constraint graph.

    Antecedents: every closure action preserves each constraint in ``S``,
    and the constraint graph of the convergence actions is an out-tree.
    """
    states = list(states)
    cache = _PreservationCache(states)
    span = candidate.fault_span

    conditions = [
        ConditionResult(
            name="constraint graph is an out-tree",
            ok=graph.is_out_tree(),
            detail=f"graph classified as {graph.classification()!r}",
        ),
        _closure_preserves_constraints(
            candidate,
            candidate.constraints,
            states,
            span,
            cache,
            label="every closure action preserves each constraint in S",
        ),
    ]
    conditions.extend(
        _binding_obligations(candidate, graph.bindings, states, None, cache)
    )
    return TheoremCertificate(
        theorem="Theorem 1 (out-tree constraint graph)",
        ok=all(condition.ok for condition in conditions),
        conditions=tuple(conditions),
    )


# ---------------------------------------------------------------------------
# Theorem 2
# ---------------------------------------------------------------------------


def _per_node_orders(
    graph: ConstraintGraph,
    states: Sequence[State],
    given: Predicate | None,
    cache: _PreservationCache,
) -> ConditionResult:
    failures: list[str] = []
    for node in graph.active_nodes():
        incoming = [edge.binding for edge in graph.incoming(node)]
        if len(incoming) <= 1:
            continue
        order = find_linear_order(incoming, states, given=given, cache=cache)
        if order is None:
            names = [binding.constraint.name for binding in incoming]
            failures.append(
                f"node {node.name!r}: no linear order among {names} in which "
                "each action preserves the constraints of its predecessors"
            )
    return ConditionResult(
        name=(
            "per target node, incoming convergence actions admit a linear order "
            "where each action preserves the preceding constraints"
        ),
        ok=not failures,
        detail="; ".join(failures),
    )


def validate_theorem2(
    candidate: CandidateTriple,
    graph: ConstraintGraph,
    states: Sequence[State],
) -> TheoremCertificate:
    """Validate Theorem 2: self-looping constraint graph plus linear orders."""
    states = list(states)
    cache = _PreservationCache(states)
    span = candidate.fault_span

    conditions = [
        ConditionResult(
            name="constraint graph is self-looping (no cycle of length > 1)",
            ok=graph.is_self_looping(),
            detail=f"graph classified as {graph.classification()!r}",
        ),
        _closure_preserves_constraints(
            candidate,
            candidate.constraints,
            states,
            span,
            cache,
            label="every closure action preserves each constraint in S",
        ),
        _per_node_orders(graph, states, span, cache),
    ]
    conditions.extend(
        _binding_obligations(candidate, graph.bindings, states, None, cache)
    )
    return TheoremCertificate(
        theorem="Theorem 2 (self-looping constraint graph)",
        ok=all(condition.ok for condition in conditions),
        conditions=tuple(conditions),
    )


# ---------------------------------------------------------------------------
# Theorem 3
# ---------------------------------------------------------------------------


def _per_node_adjacent_orders(
    graph: ConstraintGraph,
    states: Sequence[State],
    given: Predicate | None,
    cache: _PreservationCache,
) -> ConditionResult:
    """Theorem 3's per-node condition, over edges *adjacent* to each node.

    The theorem's statement orders "the convergence actions of edges
    adjacent to each node" — both incoming and outgoing, unlike
    Theorem 2's incoming-only condition. For the token ring this is what
    lets the propagation chain validate: at node ``j+1`` the order
    ``[action of x.j-edge, action of x.(j+1)-edge]`` works because the
    downstream action does not read the upstream constraint's variables.
    """
    failures: list[str] = []
    for node in graph.active_nodes():
        adjacent_edges = graph.incoming(node) + [
            edge for edge in graph.outgoing(node) if not edge.is_self_loop
        ]
        bindings = []
        seen: set[int] = set()
        for edge in adjacent_edges:
            if id(edge.binding) not in seen:
                seen.add(id(edge.binding))
                bindings.append(edge.binding)
        if len(bindings) <= 1:
            continue
        order = find_linear_order(bindings, states, given=given, cache=cache)
        if order is None:
            names = [binding.constraint.name for binding in bindings]
            failures.append(
                f"node {node.name!r}: no linear order among adjacent-edge "
                f"actions for {names}"
            )
    return ConditionResult(
        name=(
            "per node, actions of adjacent edges admit a linear order where "
            "each action preserves the preceding constraints"
        ),
        ok=not failures,
        detail="; ".join(failures),
    )


def validate_theorem3(
    candidate: CandidateTriple,
    layers: Sequence[Sequence[ConvergenceBinding]],
    nodes: Sequence[GraphNode],
    states: Sequence[State],
) -> TheoremCertificate:
    """Validate Theorem 3: hierarchically layered convergence actions.

    The conditions follow the paper's statement with the refinement the
    paper itself applies when verifying its token-ring design. The
    extended abstract states "each closure action of p preserves each
    constraint in that partition whenever all constraints in lower
    numbered partitions hold", but its own Section 7.1 verification
    argues the weaker: "the first closure action is not enabled when the
    first conjunct holds but the second does not" — i.e. preservation is
    only needed *while the layer is still converging*. Indeed the
    token-ring initiation action does break the second-layer constraint
    ``x.0 = x.1`` from the all-equal state, yet the program is correct
    because the invariant ``S`` itself is closed. Accordingly, per layer
    ``i`` with ``lower = and(layers < i)``:

    1. the layer's constraint graph is self-looping;
    2. every closure action preserves each layer-``i`` constraint
       whenever ``lower`` holds *and the layer's conjunction does not yet
       hold* (the refinement);
    3. every convergence action serving no layer-``i`` binding preserves
       each layer-``i`` constraint under the same context (this covers
       the paper's "higher numbered partitions" condition and, for merged
       actions, lower-layer actions still executing in closure capacity);
    4. the layer-``i`` actions on edges adjacent to each node admit a
       linear order in which each action preserves the constraints of the
       preceding actions (the theorem's adjacency condition, checked
       whenever ``lower`` holds);
    5. each layer-``i`` binding is enabled whenever its constraint is
       violated, establishes it in one step, and preserves the fault-span
       — all whenever ``lower`` holds;
    6. globally, the invariant ``S`` is closed under every closure and
       convergence action (the escape hatch that condition 2's refinement
       relies on: once every constraint holds, ``S`` holds forever even
       if steady-state closure activity breaks individual constraints).

    Args:
        candidate: The candidate triple.
        layers: The partition of the convergence bindings into layers
            ``0 .. M-1`` (lower layers converge first). A single action
            object may serve bindings in several layers (the token ring's
            merged propagation action serves both).
        nodes: The shared node partition; each layer's constraint graph is
            built over these nodes from that layer's bindings.
        states: The states over which obligations are checked.
    """
    states = list(states)
    cache = _PreservationCache(states)
    span = candidate.fault_span

    flat: list[ConvergenceBinding] = [b for layer in layers for b in layer]
    if len({id(b) for b in flat}) != len(flat):
        raise DesignError("layers must partition the bindings without overlap")

    conditions: list[ConditionResult] = []
    for index, layer in enumerate(layers):
        lower_constraints = [
            binding.constraint.predicate
            for earlier in layers[:index]
            for binding in earlier
        ]
        lower = all_of(lower_constraints, name=f"layers<{index}")
        layer_conj = all_of(
            [binding.constraint.predicate for binding in layer],
            name=f"layer{index}",
        )
        converging = lower & ~layer_conj & span
        standing = lower & span
        layer_constraints = [binding.constraint for binding in layer]
        layer_action_ids = {id(binding.action) for binding in layer}

        graph = ConstraintGraph.from_bindings(nodes, layer)
        conditions.append(
            ConditionResult(
                name=f"layer {index}: constraint graph is self-looping",
                ok=graph.is_self_looping(),
                detail=f"classified as {graph.classification()!r}",
            )
        )
        layer_action_names = frozenset(binding.action.name for binding in layer)
        conditions.append(
            _closure_preserves_constraints(
                candidate,
                layer_constraints,
                states,
                converging,
                cache,
                label=(
                    f"layer {index}: closure actions (other than those identified "
                    "with the layer's own convergence actions) preserve its "
                    "constraints whenever lower layers hold and the layer is "
                    "converging"
                ),
                exempt_names=layer_action_names,
            )
        )

        outside = [
            binding for binding in flat if id(binding.action) not in layer_action_ids
        ]
        outside_fail: list[str] = []
        outside_witnesses: list[PreservationViolation] = []
        checked_action_ids: set[int] = set()
        for binding in outside:
            if id(binding.action) in checked_action_ids:
                continue
            checked_action_ids.add(id(binding.action))
            for constraint in layer_constraints:
                ok, witnesses = cache.preserves(
                    binding.action, constraint.predicate, converging
                )
                if not ok:
                    outside_fail.append(
                        f"{binding.action.name} breaks {constraint.name}"
                    )
                    outside_witnesses.extend(witnesses[:1])
        conditions.append(
            ConditionResult(
                name=(
                    f"layer {index}: other layers' convergence actions preserve "
                    "its constraints whenever lower layers hold and the layer "
                    "is converging"
                ),
                ok=not outside_fail,
                detail="; ".join(outside_fail[:3]),
                violations=tuple(outside_witnesses[:5]),
            )
        )

        order_result = _per_node_adjacent_orders(graph, states, standing, cache)
        conditions.append(
            ConditionResult(
                name=f"layer {index}: {order_result.name}",
                ok=order_result.ok,
                detail=order_result.detail,
            )
        )
        for obligation in _layer_binding_obligations(
            candidate, layer, states, lower, span, cache
        ):
            conditions.append(
                ConditionResult(
                    name=f"layer {index}: {obligation.name}",
                    ok=obligation.ok,
                    detail=obligation.detail,
                    violations=obligation.violations,
                )
            )

    invariant = candidate.invariant
    closure_fail: list[str] = []
    closure_witnesses: list[PreservationViolation] = []
    checked_ids: set[int] = set()
    all_actions = list(candidate.program.actions) + [b.action for b in flat]
    for action in all_actions:
        if id(action) in checked_ids:
            continue
        checked_ids.add(id(action))
        ok, witnesses = cache.preserves(action, invariant, span)
        if not ok:
            closure_fail.append(action.name)
            closure_witnesses.extend(witnesses[:1])
    conditions.append(
        ConditionResult(
            name="the invariant S is closed under every closure and convergence action",
            ok=not closure_fail,
            detail="; ".join(closure_fail[:5]),
            violations=tuple(closure_witnesses[:5]),
        )
    )

    return TheoremCertificate(
        theorem=f"Theorem 3 ({len(layers)} layers)",
        ok=all(condition.ok for condition in conditions),
        conditions=tuple(conditions),
    )


def _layer_binding_obligations(
    candidate: CandidateTriple,
    layer: Sequence[ConvergenceBinding],
    states: Sequence[State],
    lower: Predicate,
    span: Predicate,
    cache: _PreservationCache,
) -> list[ConditionResult]:
    """Theorem 3's per-binding standing obligations, relative to ``lower``.

    Unlike Theorems 1 and 2, there is no merged-behaviour condition here:
    an action serving bindings in several layers is covered by the
    per-layer conditions 3 and 4 and the global S-closure condition.
    """

    def context(state: State) -> bool:
        return span(state) and lower(state)

    enabled_fail: list[str] = []
    establish_fail: list[str] = []
    for binding in layer:
        for state in states:
            if not context(state):
                continue
            if not binding.constraint.holds(state) and not binding.action.enabled(state):
                enabled_fail.append(
                    f"{binding.action.name} disabled while {binding.constraint.name} "
                    f"violated at {state!r}"
                )
                break
        for state in states:
            if not context(state):
                continue
            if binding.action.enabled(state):
                successor = binding.action.execute(state)
                if not binding.constraint.holds(successor):
                    establish_fail.append(
                        f"{binding.action.name} leaves {binding.constraint.name} "
                        f"violated from {state!r}"
                    )
                    break

    span_fail: list[str] = []
    span_witnesses: list[PreservationViolation] = []
    for binding in layer:
        ok, witnesses = cache.preserves(binding.action, span, lower)
        if not ok:
            span_fail.append(binding.action.name)
            span_witnesses.extend(witnesses[:1])

    return [
        ConditionResult(
            name=(
                "each convergence action is enabled whenever its constraint is "
                "violated (lower layers holding)"
            ),
            ok=not enabled_fail,
            detail="; ".join(enabled_fail[:3]),
        ),
        ConditionResult(
            name=(
                "each convergence action establishes its constraint in one step "
                "(lower layers holding)"
            ),
            ok=not establish_fail,
            detail="; ".join(establish_fail[:3]),
        ),
        ConditionResult(
            name="each convergence action preserves the fault-span T",
            ok=not span_fail,
            detail="; ".join(span_fail[:5]),
            violations=tuple(span_witnesses[:5]),
        ),
    ]
