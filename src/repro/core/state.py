"""Program states.

A state assigns a value to every variable of a program (Section 2 of the
paper). States are immutable and hashable so they can serve as vertices of
transition graphs during exhaustive verification, keys of visited-sets, and
members of invariant/fault-span extensions.

The module also provides state-space enumeration over finite domains,
random-state sampling (used to model transient fault corruption of the
whole state), and a size guard so exhaustive tools fail fast on spaces that
are too large rather than looping for hours.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator, Mapping
from typing import Any

from repro.core.errors import (
    StateSpaceTooLargeError,
    UnknownVariableError,
    ValidationError,
)
from repro.core.variables import Variable

__all__ = [
    "State",
    "enumerate_states",
    "count_states",
    "random_state",
]

#: Default ceiling on exhaustively enumerated state spaces. Large enough
#: for every instance used in the paper's experiments, small enough that a
#: misconfigured call fails in milliseconds instead of running for hours.
DEFAULT_MAX_STATES = 5_000_000


class State(Mapping[str, Any]):
    """An immutable assignment of values to variable names.

    ``State`` implements the ``Mapping`` protocol, so ``state["c.3"]``
    reads a variable and ``dict(state)`` converts back to a plain dict.
    Updates return new states::

        s2 = s1.update({"c.3": "red", "sn.3": True})

    Equality and hashing are by content, independent of insertion order.
    """

    __slots__ = ("_values", "_hash")

    def __init__(self, values: Mapping[str, Any]) -> None:
        self._values = dict(values)
        self._hash: int | None = None

    @classmethod
    def _adopt(cls, values: dict[str, Any]) -> "State":
        """Build a state that takes ownership of ``values`` without copying.

        Internal constructor for hot paths (state enumeration, ``update``,
        the packed kernel's decoder) that already hold a fresh dict no one
        else references. The caller must never mutate ``values`` afterwards
        — states are immutable by contract.
        """
        state = object.__new__(cls)
        state._values = values
        state._hash = None
        return state

    def __getitem__(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise UnknownVariableError(f"state has no variable {name!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, name: object) -> bool:
        return name in self._values

    def update(self, changes: Mapping[str, Any]) -> "State":
        """Return a new state with ``changes`` applied.

        Every changed variable must already exist in the state; a state's
        variable set is fixed by its program.
        """
        for name in changes:
            if name not in self._values:
                raise UnknownVariableError(
                    f"cannot update unknown variable {name!r}"
                )
        merged = dict(self._values)
        merged.update(changes)
        return State._adopt(merged)

    def project(self, names: Iterable[str]) -> "State":
        """Return the restriction of this state to ``names``.

        Useful for reasoning about the local state of one process or one
        constraint-graph node.
        """
        return State._adopt({name: self[name] for name in names})

    def __eq__(self, other: object) -> bool:
        if isinstance(other, State):
            return self._values == other._values
        if isinstance(other, Mapping):
            return self._values == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(frozenset(self._values.items()))
        return self._hash

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={self._values[name]!r}" for name in sorted(self._values)
        )
        return f"State({inner})"


def _require_unique_names(variables: list[Variable]) -> None:
    """Reject duplicate variable names.

    ``dict(zip(names, combo))`` silently collapses duplicates, which would
    yield a smaller state space than :func:`count_states` reports, so the
    mismatch is detected here and reported as a usage error instead.
    """
    seen: set[str] = set()
    duplicates: set[str] = set()
    for variable in variables:
        if variable.name in seen:
            duplicates.add(variable.name)
        seen.add(variable.name)
    if duplicates:
        raise ValidationError(
            f"duplicate variable name(s) {sorted(duplicates)}: each variable "
            "must appear exactly once in a state enumeration"
        )


def count_states(variables: Iterable[Variable]) -> int:
    """The number of states over ``variables``.

    Raises:
        StateSpaceTooLargeError: if any variable's domain is infinite.
    """
    total = 1
    for variable in variables:
        size = variable.domain.size()
        if size is None:
            raise StateSpaceTooLargeError(
                f"variable {variable.name!r} has an infinite domain"
            )
        total *= size
    return total


def enumerate_states(
    variables: Iterable[Variable],
    *,
    max_states: int = DEFAULT_MAX_STATES,
) -> Iterator[State]:
    """Yield every state over ``variables`` in deterministic order.

    Args:
        variables: The program variables; all domains must be finite.
        max_states: Guard against runaway enumeration; exceeding it raises
            :class:`StateSpaceTooLargeError` before any state is yielded.
    """
    ordered = list(variables)
    _require_unique_names(ordered)
    total = count_states(ordered)
    if total > max_states:
        raise StateSpaceTooLargeError(
            f"state space has {total} states, above the limit of {max_states}"
        )
    names = [variable.name for variable in ordered]
    domains = [tuple(variable.domain.values()) for variable in ordered]
    for combo in itertools.product(*domains):
        yield State._adopt(dict(zip(names, combo)))


def random_state(variables: Iterable[Variable], rng: Any) -> State:
    """Draw an independent uniform value for every variable.

    This models the paper's strongest fault class: transient faults that
    "arbitrarily corrupt the state of any number of nodes". Infinite
    domains draw from their declared sampling window.

    Raises:
        ValidationError: if two variables share a name (the collision
            would silently drop one of the draws).
    """
    ordered = list(variables)
    _require_unique_names(ordered)
    return State._adopt({v.name: v.domain.sample(rng) for v in ordered})
