"""Content-addressed fingerprints of programs, predicates and instances.

The verification service caches transition systems and verdicts keyed by
*what is being verified*, not by object identity: two calls that build
the same protocol instance must hit the same cache entry, and any change
to the instance — a variable, a domain, an action guard or statement —
must miss it.

Guards and assignment right-hand sides are opaque Python callables, so a
purely structural hash (names, domains, read/write sets) cannot see a
changed lambda body. The fingerprint therefore combines two layers:

- **structure** — the program name, every variable with its domain and
  owning process, and every action with its name, process, read set,
  write set and guard name/support;
- **behaviour** — a deterministic probe: a fixed pseudo-random-but-seeded
  battery of states on which every guard verdict and every enabled
  action's successor is recorded. A changed guard or statement that
  matters on any probe state changes the digest.

The probe is O(actions x probe states) and independent of the state-space
size, so fingerprinting stays cheap even for instances whose exhaustive
verification takes seconds.
"""

from __future__ import annotations

import hashlib
import random
from typing import Any

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State

__all__ = [
    "fingerprint_program",
    "fingerprint_predicate",
    "fingerprint_instance",
    "probe_states",
]

#: Number of probe states in the behavioural layer of a fingerprint.
PROBE_STATES = 32

#: Values drawn per infinite domain when building probe states.
_INFINITE_DOMAIN_DRAWS = 8

#: Fixed seed for infinite-domain draws — fingerprints must be stable
#: across processes and sessions.
_PROBE_SEED = 0x5EED


def probe_states(program: Program, *, limit: int = PROBE_STATES) -> list[State]:
    """A deterministic battery of states of ``program``.

    States are built directly from the domains (value ``(j * (i + 3) + i)
    mod |D_i|`` of variable ``i`` in probe state ``j``), so the cost does
    not depend on the size of the full state space and unbounded domains
    are supported through their seeded sampling windows.
    """
    variables = list(program.variables.values())
    if not variables:
        return []
    rng = random.Random(_PROBE_SEED)
    per_variable: list[list[Any]] = []
    for variable in variables:
        if variable.domain.is_finite:
            values = list(variable.domain.values())
        else:
            values = [
                variable.domain.sample(rng) for _ in range(_INFINITE_DOMAIN_DRAWS)
            ]
        per_variable.append(values)
    states = []
    for j in range(limit):
        values = {
            variable.name: per_variable[i][(j * (i + 3) + i) % len(per_variable[i])]
            for i, variable in enumerate(variables)
        }
        states.append(State(values))
    return states


def _canonical_value(value: Any) -> str:
    return f"{type(value).__name__}:{value!r}"


def _structure_tokens(program: Program) -> list[str]:
    tokens = [f"program={program.name}"]
    for name in sorted(program.variables):
        variable = program.variables[name]
        tokens.append(
            f"var={name};domain={variable.domain!r};process={variable.process!r}"
        )
    for action in program.actions:
        support = (
            sorted(action.guard.support)
            if action.guard.support is not None
            else "?"
        )
        tokens.append(
            f"action={action.name};process={action.process!r};"
            f"reads={sorted(action.reads)};writes={sorted(action.writes)};"
            f"guard={action.guard.name};support={support}"
        )
    return tokens


def _behaviour_tokens(program: Program, states: list[State]) -> list[str]:
    tokens = []
    for position, state in enumerate(states):
        for action in program.actions:
            if action.enabled(state):
                successor = action.effect.evaluate(state)
                writes = ",".join(
                    f"{name}={_canonical_value(successor[name])}"
                    for name in sorted(successor)
                )
                tokens.append(f"s{position}:{action.name}->{writes}")
            else:
                tokens.append(f"s{position}:{action.name}:off")
    return tokens


def _digest(tokens: list[str]) -> str:
    hasher = hashlib.sha256()
    for token in tokens:
        hasher.update(token.encode())
        hasher.update(b"\x00")
    return hasher.hexdigest()


def fingerprint_program(program: Program, *, probe: int = PROBE_STATES) -> str:
    """A content-addressed digest of ``program``.

    Stable across processes; sensitive to variables, domains, action
    names/read/write sets, and to guard/assignment behaviour on the
    probe battery.
    """
    states = probe_states(program, limit=probe)
    return _digest(_structure_tokens(program) + _behaviour_tokens(program, states))


def fingerprint_predicate(
    predicate: Predicate,
    program: Program | None = None,
    *,
    probe: int = PROBE_STATES,
) -> str:
    """A digest of ``predicate``, behaviourally probed against ``program``.

    Without a program the digest covers only the predicate's name and
    support — enough to distinguish differently-named invariants, blind
    to a changed body behind the same name.
    """
    support = sorted(predicate.support) if predicate.support is not None else "?"
    tokens = [f"predicate={predicate.name};support={support}"]
    if program is not None:
        verdicts = "".join(
            "1" if predicate(state) else "0"
            for state in probe_states(program, limit=probe)
        )
        tokens.append(f"verdicts={verdicts}")
    return _digest(tokens)


def fingerprint_instance(
    program: Program,
    invariant: Predicate,
    fault_span: Predicate | None = None,
    *,
    fairness: str = "weak",
    extra: tuple[str, ...] = (),
) -> str:
    """The cache key of one verification instance.

    Combines the program and predicate digests with the computation model
    and any caller-supplied discriminators (e.g. a state-window label for
    instances verified over a subset of the space).
    """
    tokens = [
        f"program={fingerprint_program(program)}",
        f"invariant={fingerprint_predicate(invariant, program)}",
        f"fault_span="
        + (
            fingerprint_predicate(fault_span, program)
            if fault_span is not None
            else "none"
        ),
        f"fairness={fairness}",
    ]
    tokens.extend(f"extra={item}" for item in extra)
    return _digest(tokens)
