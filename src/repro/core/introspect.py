"""Read/write-set inference for guards, statements and predicates.

The paper's side conditions (Section 4) are stated over the *true* read
and write sets of actions — the action on edge ``v -> w`` reads only
``vars(v) | vars(w)`` and writes only ``vars(w)`` — but the core model
takes guards and right-hand sides as opaque Python callables and trusts
the developer-declared sets. This module recovers the true sets:

- **symbolically**, when a callable carries its own structure — a
  :class:`~repro.core.predicates.Predicate` lowered from the expression
  DSL keeps its :class:`~repro.core.expr.BoolExpr` in ``source``, and an
  expression right-hand side answers ``variables()`` directly. Symbolic
  inference is *exact*.
- **by probing**, for plain callables: the callable is evaluated against
  a battery of sampled states wrapped in a :class:`RecordingState` proxy
  that records every variable access. Probing *under-approximates* —
  a data-dependent read (a short-circuited branch never taken on any
  probe state) can be missed — so every access it does record is real,
  but absence of a record proves nothing. Diagnostics built on top
  (:mod:`repro.staticcheck`) only report in the sound direction.

The result of inference is an :class:`InferredSupport` — the per-action
row of the support tables :mod:`repro.staticcheck` builds.
"""

from __future__ import annotations

from collections.abc import Iterator, Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.core.state import State

if TYPE_CHECKING:  # avoid an import cycle: actions imports this module
    from repro.core.actions import Action, Assignment
    from repro.core.predicates import Predicate

__all__ = [
    "RecordingState",
    "InferredSupport",
    "METHOD_SYMBOLIC",
    "METHOD_PROBE",
    "METHOD_MIXED",
    "callable_location",
    "infer_predicate_reads",
    "infer_effect_support",
    "infer_action_support",
]

#: Every consulted part answered ``variables()`` — the sets are exact.
METHOD_SYMBOLIC = "symbolic"
#: Every consulted part was probed — the read set may under-approximate.
METHOD_PROBE = "probe"
#: Some parts symbolic, some probed.
METHOD_MIXED = "mixed"


class RecordingState(Mapping[str, Any]):
    """A read-recording view of a state.

    Implements the ``Mapping`` protocol over a base state; every key
    access (``state[name]`` or ``name in state``) is added to
    ``accessed``. Guards and right-hand sides take any mapping, so they
    evaluate against the proxy unchanged.
    """

    __slots__ = ("_base", "accessed")

    def __init__(self, base: Mapping[str, Any]) -> None:
        self._base = base
        self.accessed: set[str] = set()

    def __getitem__(self, name: str) -> Any:
        self.accessed.add(name)
        return self._base[name]

    def __contains__(self, name: object) -> bool:
        if isinstance(name, str):
            self.accessed.add(name)
        return name in self._base

    def __iter__(self) -> Iterator[str]:
        # Iterating is reading every variable.
        self.accessed.update(self._base)
        return iter(self._base)

    def __len__(self) -> int:
        return len(self._base)


@dataclass(frozen=True)
class InferredSupport:
    """The inferred read/write sets of one action (or predicate).

    Attributes:
        reads: Every variable inference saw read. Exact under
            :data:`METHOD_SYMBOLIC`; a lower bound under
            :data:`METHOD_PROBE` (see the module docstring).
        writes: Every variable the statement produced a value for on some
            probe state (empty for predicates).
        method: How the sets were obtained — one of
            :data:`METHOD_SYMBOLIC`, :data:`METHOD_PROBE`,
            :data:`METHOD_MIXED`.
        probes: Number of states probed (0 for purely symbolic inference).
    """

    reads: frozenset[str]
    writes: frozenset[str]
    method: str
    probes: int

    @property
    def exact(self) -> bool:
        """Whether ``reads`` is the exact read set (symbolic inference)."""
        return self.method == METHOD_SYMBOLIC


def callable_location(obj: Any) -> str | None:
    """Best-effort ``file.py:lineno`` of a callable, for diagnostics.

    Unwraps :class:`~repro.core.predicates.Predicate` objects to their
    evaluation function. Returns ``None`` for builtins and non-callables.
    """
    fn = getattr(obj, "_fn", obj)
    code = getattr(fn, "__code__", None)
    if code is None:
        call = getattr(type(fn), "__call__", None)
        code = getattr(call, "__code__", None)
    if code is None:
        return None
    return f"{Path(code.co_filename).name}:{code.co_firstlineno}"


def _symbolic_variables(obj: Any) -> frozenset[str] | None:
    """``obj.variables()`` when ``obj`` is a symbolic expression."""
    probe = getattr(obj, "variables", None)
    if callable(probe):
        try:
            return frozenset(probe())
        except TypeError:
            return None
    return None


def _record_call(fn: Any, state: State, accessed: set[str]) -> None:
    """Evaluate ``fn`` on a recording view of ``state``, keeping accesses.

    A callable may legitimately raise on an arbitrary sampled state (a
    right-hand side that assumes its guard); the accesses made before the
    exception are still real reads, so they are kept and the exception is
    swallowed.
    """
    proxy = RecordingState(state)
    try:
        fn(proxy)
    except Exception:
        pass
    accessed.update(proxy.accessed)


def infer_predicate_reads(
    predicate: "Predicate", states: Sequence[State]
) -> InferredSupport:
    """Infer the read set of a predicate.

    Uses the symbolic ``source`` expression when the predicate was
    lowered from the DSL; otherwise probes the evaluation function
    against ``states``.
    """
    symbolic = _symbolic_variables(getattr(predicate, "source", None))
    if symbolic is not None:
        return InferredSupport(
            reads=symbolic, writes=frozenset(), method=METHOD_SYMBOLIC, probes=0
        )
    accessed: set[str] = set()
    for state in states:
        _record_call(predicate, state, accessed)
    return InferredSupport(
        reads=frozenset(accessed),
        writes=frozenset(),
        method=METHOD_PROBE,
        probes=len(states),
    )


def infer_effect_support(
    effect: "Assignment", states: Sequence[State]
) -> InferredSupport:
    """Infer the read and write sets of a statement.

    Reads come from symbolic right-hand sides where available and from a
    recording probe otherwise. Writes are the keys the statement actually
    produced when evaluated on the probe states — normally identical to
    ``effect.writes``, but a subclass with an inconsistent ``writes``
    declaration is caught this way.
    """
    reads: set[str] = set()
    probed = False
    symbolic = True
    for rhs in effect.updates.values():
        variables = _symbolic_variables(rhs)
        if variables is not None:
            reads.update(variables)
        elif callable(rhs):
            symbolic = False
            probed = True
        else:
            pass  # plain constant: reads nothing
    writes: set[str] = set()
    if probed or type(effect).writes is not _base_assignment_writes():
        for state in states:
            proxy = RecordingState(state)
            try:
                produced = effect.evaluate(proxy)
            except Exception:
                produced = {}
            reads.update(proxy.accessed)
            writes.update(produced)
    else:
        writes.update(effect.writes)
    # Symbolic rhs accesses were recorded by the probe too; dedupe is free.
    if probed:
        method = METHOD_MIXED if any(
            _symbolic_variables(rhs) is not None for rhs in effect.updates.values()
        ) else METHOD_PROBE
        probes = len(states)
    else:
        method = METHOD_SYMBOLIC if symbolic else METHOD_PROBE
        probes = 0
    return InferredSupport(
        reads=frozenset(reads),
        writes=frozenset(writes),
        method=method,
        probes=probes,
    )


def _base_assignment_writes():
    from repro.core.actions import Assignment

    return Assignment.writes


def infer_action_support(action: "Action", states: Sequence[State]) -> InferredSupport:
    """Infer the full read/write sets of a guarded action.

    Reads are the union of the guard's and the statement's inferred
    reads; writes are the statement's inferred writes. The ``method`` is
    :data:`METHOD_SYMBOLIC` only when both parts were exact.
    """
    guard = infer_predicate_reads(action.guard, states)
    effect = infer_effect_support(action.effect, states)
    if guard.method == effect.method:
        method = guard.method
    elif METHOD_PROBE in (guard.method, effect.method) or METHOD_MIXED in (
        guard.method,
        effect.method,
    ):
        method = METHOD_MIXED
    else:
        method = METHOD_SYMBOLIC
    return InferredSupport(
        reads=guard.reads | effect.reads,
        writes=effect.writes,
        method=method,
        probes=max(guard.probes, effect.probes),
    )
