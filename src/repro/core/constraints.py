"""Constraints and convergence bindings.

The design method (Section 3) partitions the invariant ``S`` into
*constraints* — predicates that can each be independently checked and
established by some program action — such that::

    (conjunction of all constraints) and T   ==   S

For each constraint ``c`` the designer supplies one *convergence action*
of the form ``not c -> "establish c while preserving T"``. The pairing of
a constraint with its convergence action is a :class:`ConvergenceBinding`.

The paper also merges convergence actions with closure actions that share
a statement (the diffusing computation merges the propagation action with
the convergence action for ``R.j``). A binding therefore only requires the
action's guard to be *implied by* ``not c`` — i.e. the action must fire
whenever the constraint is violated — rather than to equal it; strictness
is checked separately, see :meth:`ConvergenceBinding.guard_is_strict`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import InitVar, dataclass

from repro.core.actions import Action
from repro.core.errors import DesignError, LintError
from repro.core.expr import BoolExpr
from repro.core.introspect import (
    METHOD_MIXED,
    InferredSupport,
    infer_predicate_reads,
)
from repro.core.predicates import Predicate, all_of
from repro.core.state import State

__all__ = ["Constraint", "ConvergenceBinding", "conjunction"]


@dataclass(frozen=True)
class Constraint:
    """One conjunct of the invariant that can be locally checked.

    Attributes:
        name: Identifier used in constraint graphs and reports,
            e.g. ``"R.3"`` in the diffusing computation.
        predicate: The constraint itself. A symbolic
            :class:`~repro.core.expr.BoolExpr` may be passed directly —
            it is lowered to a :class:`Predicate` with its support
            derived from ``variables()``. An opaque predicate must carry
            a declared support (on the predicate or via
            ``declared_support=``) —
            the constraint graph is defined in terms of which variables a
            constraint (and its convergence action) touches.
        declared_support: Optional explicit support declaration.
            Redundant for symbolic predicates; when given anyway it is
            cross-checked against the derived set and a
            :class:`LintError` is raised on disagreement.
    """

    name: str
    predicate: Predicate
    declared_support: InitVar[Iterable[str] | None] = None

    def __post_init__(self, declared_support: Iterable[str] | None) -> None:
        predicate = self.predicate
        if isinstance(predicate, BoolExpr):
            predicate = predicate.predicate()
            object.__setattr__(self, "predicate", predicate)
        declared = (
            frozenset(declared_support) if declared_support is not None else None
        )
        exact = (
            frozenset(predicate.source.variables())
            if predicate.source is not None
            else None
        )
        if declared is not None:
            against = exact if exact is not None else predicate.support
            if against is not None and declared != against:
                origin = "symbolic variables" if exact is not None else "support"
                raise LintError(
                    f"constraint {self.name!r} declares support "
                    f"{sorted(declared)} but its predicate's {origin} is "
                    f"{sorted(against)}; drop the redundant declaration or "
                    "fix whichever set is wrong"
                )
            if predicate.support is None:
                object.__setattr__(
                    self, "predicate", predicate.with_support(declared)
                )
        if self.predicate.support is None:
            raise DesignError(
                f"constraint {self.name!r} has a predicate without a declared "
                "support; the constraint graph requires exact variable sets"
            )

    def holds(self, state: State) -> bool:
        return self.predicate(state)

    @property
    def support(self) -> frozenset[str]:
        assert self.predicate.support is not None  # enforced in __post_init__
        return self.predicate.support

    def inferred_support(self, states: Sequence[State]) -> InferredSupport:
        """The predicate's *inferred* read set (exact when symbolic)."""
        return infer_predicate_reads(self.predicate, states)

    def __repr__(self) -> str:
        return f"Constraint({self.name!r}: {self.predicate.name})"


@dataclass(frozen=True)
class ConvergenceBinding:
    """A constraint paired with the convergence action that establishes it.

    The binding is the unit the constraint graph is built from: the edge
    for this binding ends at the node containing ``action.writes`` and
    starts at the node contributing the remaining reads.
    """

    constraint: Constraint
    action: Action

    def violated_implies_enabled(self, states: Iterable[State]) -> bool:
        """Check ``not c => guard`` over ``states``.

        A convergence action must be enabled whenever its constraint is
        violated, otherwise a violated constraint could persist forever.
        This is an exhaustive check over the supplied states (typically
        the full space of a finite instance).
        """
        return all(
            self.action.enabled(state)
            for state in states
            if not self.constraint.holds(state)
        )

    def establishes_constraint(self, states: Iterable[State]) -> bool:
        """Check that executing the action yields a state satisfying ``c``.

        Exhaustive over the supplied states where the action is enabled.
        """
        return all(
            self.constraint.holds(self.action.execute(state))
            for state in states
            if self.action.enabled(state)
        )

    def guard_is_strict(self, states: Iterable[State]) -> bool:
        """Whether the guard equals ``not c`` exactly over ``states``.

        Pure convergence actions (enabled only when the constraint is
        violated) trivially preserve ``S``; merged closure/convergence
        actions are not strict and must be validated as closure actions
        too.
        """
        return all(
            self.action.enabled(state) == (not self.constraint.holds(state))
            for state in states
        )

    def inferred_support(self, states: Sequence[State]) -> InferredSupport:
        """Inferred reads/writes of the whole binding.

        Reads are the union of the action's inferred reads and the
        constraint predicate's inferred reads (the edge ``v -> w`` this
        binding labels must cover both); writes are the action's.
        """
        action = self.action.inferred_support(states)
        constraint = self.constraint.inferred_support(states)
        method = (
            action.method if action.method == constraint.method else METHOD_MIXED
        )
        return InferredSupport(
            reads=action.reads | constraint.reads,
            writes=action.writes,
            method=method,
            probes=max(action.probes, constraint.probes),
        )

    def __repr__(self) -> str:
        return f"ConvergenceBinding({self.constraint.name!r} <- {self.action.name!r})"


def conjunction(constraints: Iterable[Constraint], *, name: str = "S") -> Predicate:
    """The conjunction of the constraints' predicates, as one predicate."""
    return all_of([c.predicate for c in constraints], name=name)
