"""Variant (ranking) functions.

Section 8 of the paper relates the constraint-graph method to the standard
approach for proving progress: exhibit a *variant function* — a mapping
from states into a well-founded set that never increases along a step and
eventually decreases, until the target predicate holds.

This module makes that notion executable on finite instances. A variant
function is any callable from states to a totally ordered value (ints or
tuples of ints). Two check strengths are provided:

- :func:`check_variant_strict` — every step from a non-target state
  strictly decreases the variant. Sufficient for convergence under *any*
  daemon, fair or not (the Section 8 fairness remark).
- :func:`check_variant_weak` — no step increases the variant, from every
  non-target state some enabled step exists, and from every non-target
  state at least one enabled step strictly decreases it. Sufficient for
  convergence under weak fairness when combined with finiteness of
  plateaus; the exact convergence decision lives in
  :mod:`repro.verification.convergence`, this check is the designer-facing
  diagnostic.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass
from typing import Any

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State

__all__ = ["VariantReport", "check_variant_strict", "check_variant_weak"]

VariantFunction = Callable[[State], Any]


@dataclass(frozen=True)
class VariantReport:
    """Outcome of a variant-function check.

    Attributes:
        ok: Whether the required conditions held at every checked state.
        checked: Number of non-target states examined.
        problems: Human-readable descriptions of the first few failures.
    """

    ok: bool
    checked: int
    problems: tuple[str, ...] = ()

    def __bool__(self) -> bool:
        return self.ok


def check_variant_strict(
    program: Program,
    variant: VariantFunction,
    target: Predicate,
    states: Iterable[State],
    *,
    max_problems: int = 5,
) -> VariantReport:
    """Check that every step outside ``target`` strictly decreases ``variant``.

    Also requires that no non-target state is terminal (a computation must
    not end outside the target). Passing this check proves convergence to
    ``target`` under an arbitrary (possibly unfair) daemon.
    """
    problems: list[str] = []
    checked = 0
    for state in states:
        if target(state):
            continue
        checked += 1
        successors = program.successors(state)
        if not successors:
            problems.append(f"deadlock outside target at {state!r}")
        value = variant(state)
        for action, successor in successors:
            next_value = variant(successor)
            if not next_value < value:
                problems.append(
                    f"action {action.name!r} does not decrease the variant at "
                    f"{state!r}: {value!r} -> {next_value!r}"
                )
        if len(problems) >= max_problems:
            break
    return VariantReport(ok=not problems, checked=checked, problems=tuple(problems))


def check_variant_weak(
    program: Program,
    variant: VariantFunction,
    target: Predicate,
    states: Iterable[State],
    *,
    max_problems: int = 5,
) -> VariantReport:
    """Check the weak variant conditions outside ``target``.

    No enabled step increases the variant; every non-target state has an
    enabled step; and from every non-target state some enabled step
    strictly decreases the variant.
    """
    problems: list[str] = []
    checked = 0
    for state in states:
        if target(state):
            continue
        checked += 1
        successors = program.successors(state)
        if not successors:
            problems.append(f"deadlock outside target at {state!r}")
            if len(problems) >= max_problems:
                break
            continue
        value = variant(state)
        decreases = False
        for action, successor in successors:
            next_value = variant(successor)
            if next_value > value:
                problems.append(
                    f"action {action.name!r} increases the variant at "
                    f"{state!r}: {value!r} -> {next_value!r}"
                )
            if next_value < value:
                decreases = True
        if not decreases:
            problems.append(
                f"no enabled action decreases the variant at {state!r} "
                f"(value {value!r})"
            )
        if len(problems) >= max_problems:
            break
    return VariantReport(ok=not problems, checked=checked, problems=tuple(problems))
