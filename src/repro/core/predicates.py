"""State predicates.

A state predicate is a boolean expression over program variables
(Section 2). :class:`Predicate` wraps an evaluation function together with
a *support* — the set of variable names the predicate reads. Supports are
what connect predicates to the constraint graph: a constraint whose support
is contained in ``vars(v) | vars(w)`` can label the edge ``v -> w``.

Predicates form a small algebra::

    inside = Predicate(lambda s: s["x"] <= s["z"], name="x<=z", support={"x", "z"})
    both = inside & distinct          # conjunction
    either = inside | distinct       # disjunction
    outside = ~inside                 # negation
    weaker = inside.implies(other)    # implication

Combinators union the supports and build readable names, so diagnostics
from verification tools stay legible.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from typing import Any

from repro.core.state import State

__all__ = ["Predicate", "TRUE", "FALSE", "all_of", "any_of", "count_of", "var_equals"]


class Predicate:
    """A named boolean function of states with a declared support.

    Attributes:
        name: Human-readable description, used in reports and traces.
        support: The variable names the predicate may read, or ``None``
            when unknown. Tools that need a support (the constraint graph
            builder) reject predicates without one.
        source: The symbolic expression this predicate was lowered from
            (a :class:`~repro.core.expr.BoolExpr`), or ``None`` for
            opaque callables. When present, static analysis can recover
            the *exact* read set via ``source.variables()`` instead of
            trusting the declared support.
        parts: The combinator structure this predicate was built from,
            or ``None`` for a leaf. Combinators record their operator
            and operand predicates — ``("and", (p, q))``, ``("or", (p,
            q))``, ``("not", (p,))``, ``("implies", (p, q))``, ``("all",
            operands)``, ``("any", operands)`` and ``("count", operands,
            k)`` — so analyses (the vectorized kernel sweeps) can
            decompose a predicate into small-support leaves instead of
            treating the composed callable as opaque. The recorded
            operands are the predicates actually evaluated by the
            wrapped function, so any structural evaluation is
            extensionally identical to calling the predicate.
    """

    __slots__ = ("_fn", "name", "support", "source", "parts")

    def __init__(
        self,
        fn: Callable[[State], bool],
        *,
        name: str | None = None,
        support: Iterable[str] | None = None,
        source: Any = None,
        parts: tuple | None = None,
    ) -> None:
        self._fn = fn
        self.name = name if name is not None else getattr(fn, "__name__", "<predicate>")
        self.support = frozenset(support) if support is not None else None
        self.source = source
        self.parts = parts

    def __call__(self, state: State) -> bool:
        return bool(self._fn(state))

    def holds(self, state: State) -> bool:
        """Whether the predicate is true at ``state`` (alias of call)."""
        return self(state)

    def holds_everywhere(self, states: Iterable[State]) -> bool:
        """Whether the predicate is true at every state in ``states``."""
        return all(self(state) for state in states)

    def _merged_support(self, other: "Predicate") -> frozenset[str] | None:
        if self.support is None or other.support is None:
            return None
        return self.support | other.support

    def __and__(self, other: "Predicate") -> "Predicate":
        return Predicate(
            lambda state: self(state) and other(state),
            name=f"({self.name} and {other.name})",
            support=self._merged_support(other),
            parts=("and", (self, other)),
        )

    def __or__(self, other: "Predicate") -> "Predicate":
        return Predicate(
            lambda state: self(state) or other(state),
            name=f"({self.name} or {other.name})",
            support=self._merged_support(other),
            parts=("or", (self, other)),
        )

    def __invert__(self) -> "Predicate":
        return Predicate(
            lambda state: not self(state),
            name=f"not ({self.name})",
            support=self.support,
            parts=("not", (self,)),
        )

    def implies(self, other: "Predicate") -> "Predicate":
        """The predicate ``self => other``."""
        return Predicate(
            lambda state: (not self(state)) or other(state),
            name=f"({self.name} => {other.name})",
            support=self._merged_support(other),
            parts=("implies", (self, other)),
        )

    def renamed(self, name: str) -> "Predicate":
        """A copy of this predicate carrying a new display name."""
        return Predicate(
            self._fn,
            name=name,
            support=self.support,
            source=self.source,
            parts=self.parts,
        )

    def with_support(self, support: Iterable[str]) -> "Predicate":
        """A copy of this predicate carrying an explicit support."""
        return Predicate(
            self._fn,
            name=self.name,
            support=support,
            source=self.source,
            parts=self.parts,
        )

    def __repr__(self) -> str:
        return f"Predicate({self.name!r})"


#: The predicate that holds at every state. This is the fault-span ``T``
#: of a *stabilizing* program (Section 5).
TRUE = Predicate(lambda state: True, name="true", support=())

#: The predicate that holds at no state.
FALSE = Predicate(lambda state: False, name="false", support=())


def all_of(predicates: Iterable[Predicate], *, name: str | None = None) -> Predicate:
    """Conjunction of ``predicates``; of an empty iterable, ``TRUE``.

    This is how an invariant ``S`` is recovered from its constraint
    decomposition: ``S == all_of(constraint predicates) & T``.
    """
    preds = list(predicates)
    if not preds:
        return TRUE if name is None else TRUE.renamed(name)
    supports = [p.support for p in preds]
    support = None
    if all(s is not None for s in supports):
        support = frozenset().union(*supports)  # type: ignore[arg-type]
    display = name if name is not None else " and ".join(p.name for p in preds)
    return Predicate(
        lambda state: all(p(state) for p in preds),
        name=display,
        support=support,
        parts=("all", tuple(preds)),
    )


def any_of(predicates: Iterable[Predicate], *, name: str | None = None) -> Predicate:
    """Disjunction of ``predicates``; of an empty iterable, ``FALSE``."""
    preds = list(predicates)
    if not preds:
        return FALSE if name is None else FALSE.renamed(name)
    supports = [p.support for p in preds]
    support = None
    if all(s is not None for s in supports):
        support = frozenset().union(*supports)  # type: ignore[arg-type]
    display = name if name is not None else " or ".join(p.name for p in preds)
    return Predicate(
        lambda state: any(p(state) for p in preds),
        name=display,
        support=support,
        parts=("any", tuple(preds)),
    )


def count_of(
    predicates: Iterable[Predicate], count: int, *, name: str | None = None
) -> Predicate:
    """The predicate "exactly ``count`` of ``predicates`` hold".

    A counting combinator: global specifications like a token ring's
    "exactly one node is privileged" are conjunctions over *how many*
    local conditions hold, not which — recording the count structure
    keeps every operand's small support visible (each privilege tests
    two adjacent counters) where a hand-written monolithic callable
    would force readers of the predicate to treat the whole variable
    set as one opaque block.
    """
    preds = list(predicates)
    supports = [p.support for p in preds]
    support = None
    if all(s is not None for s in supports):
        support = frozenset().union(*supports)  # type: ignore[arg-type]
    display = (
        name
        if name is not None
        else f"exactly {count} of [" + ", ".join(p.name for p in preds) + "]"
    )
    return Predicate(
        lambda state: sum(1 for p in preds if p(state)) == count,
        name=display,
        support=support,
        parts=("count", tuple(preds), count),
    )


def var_equals(name: str, value: Any) -> Predicate:
    """The predicate ``name == value``."""
    return Predicate(
        lambda state: state[name] == value,
        name=f"{name} == {value!r}",
        support=(name,),
    )
