"""Paper-style program listings.

Renders a :class:`~repro.core.program.Program` in the guarded-command
notation the paper uses::

    program Diffusing-computation
    process j: 1..N
    var c.j : {green, red};
        sn.j : boolean;
    begin
        <guard>  ->  <writes>
      | <guard>  ->  <writes>
    end

Guards print through their predicate display names; statements print as
the set of written variables (the library's statements are opaque
callables, so the listing shows the write targets — which, together with
the guard names protocols choose carefully, reproduces the paper's
listings closely enough for documentation and review).
"""

from __future__ import annotations

from repro.core.domains import (
    BooleanDomain,
    EnumDomain,
    IntegerDomain,
    IntegerRangeDomain,
    ModularDomain,
)
from repro.core.program import Program

__all__ = ["render_program"]


def _domain_text(domain) -> str:
    if isinstance(domain, BooleanDomain):
        return "boolean"
    if isinstance(domain, ModularDomain):
        return f"0..{domain.modulus - 1}"
    if isinstance(domain, IntegerRangeDomain):
        return f"{domain.lo}..{domain.hi}"
    if isinstance(domain, EnumDomain):
        values = ", ".join(str(v) for v in domain.values())
        return f"{{{values}}}"
    if isinstance(domain, IntegerDomain):
        return "integer"
    values = list(domain.values()) if domain.is_finite else None
    if values is not None and len(values) <= 8:
        return "{" + ", ".join(map(str, values)) + "}"
    return type(domain).__name__


def render_program(program: Program) -> str:
    """The paper-style listing of ``program``."""
    lines = [f"program {program.name}"]

    by_process: dict = {}
    for variable in program.variables.values():
        by_process.setdefault(variable.process, []).append(variable)
    if len(by_process) > 1:
        processes = ", ".join(str(p) for p in by_process if p is not None)
        lines.append(f"process j in {{{processes}}};")

    lines.append("var")
    for variable in program.variables.values():
        lines.append(f"    {variable.name} : {_domain_text(variable.domain)};")

    lines.append("begin")
    for position, action in enumerate(program.actions):
        writes = ", ".join(sorted(action.writes))
        prefix = "    " if position == 0 else "  | "
        lines.append(f"{prefix}{action.guard.name}")
        lines.append(f"        -> update {writes}    [{action.name}]")
    lines.append("end")
    return "\n".join(lines)
