"""Programs.

A program is a finite set of variables and a finite set of actions
(Section 2). :class:`Program` validates that every action reads and writes
only declared variables, and provides the operations every other subsystem
builds on: enabled-action queries, validated steps, successor expansion
for exhaustive exploration, state-space enumeration, and augmentation
(the design method of Section 3 augments a closure-only program with
convergence actions).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping
from typing import Any

from repro.core.actions import Action
from repro.core.errors import DomainError, UnknownVariableError
from repro.core.state import (
    DEFAULT_MAX_STATES,
    State,
    count_states,
    enumerate_states,
    random_state,
)
from repro.core.variables import Variable

__all__ = ["Program"]


class Program:
    """A finite set of variables plus a finite set of guarded actions.

    Programs are immutable; :meth:`augmented` returns a new program with
    extra actions rather than mutating in place.
    """

    def __init__(
        self,
        name: str,
        variables: Iterable[Variable],
        actions: Iterable[Action],
    ) -> None:
        self.name = name
        self.variables: dict[str, Variable] = {}
        for variable in variables:
            if variable.name in self.variables:
                raise ValueError(f"duplicate variable {variable.name!r}")
            self.variables[variable.name] = variable
        self.actions: tuple[Action, ...] = tuple(actions)
        names_seen: set[str] = set()
        for action in self.actions:
            if action.name in names_seen:
                raise ValueError(f"duplicate action name {action.name!r}")
            names_seen.add(action.name)
            unknown = (action.reads | action.writes) - self.variables.keys()
            if unknown:
                raise UnknownVariableError(
                    f"action {action.name!r} references undeclared variables "
                    f"{sorted(unknown)}"
                )

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def action(self, name: str) -> Action:
        """The action with the given name.

        Raises:
            KeyError: if no action has that name.
        """
        for action in self.actions:
            if action.name == name:
                return action
        raise KeyError(f"program {self.name!r} has no action {name!r}")

    @property
    def variable_names(self) -> frozenset[str]:
        return frozenset(self.variables)

    def processes(self) -> list[Any]:
        """The distinct process identifiers owning variables, in order."""
        seen: list[Any] = []
        for variable in self.variables.values():
            if variable.process is not None and variable.process not in seen:
                seen.append(variable.process)
        return seen

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def make_state(self, values: Mapping[str, Any], *, validate: bool = True) -> State:
        """Build a state, checking coverage and domain membership."""
        missing = self.variables.keys() - values.keys()
        if missing:
            raise UnknownVariableError(
                f"state is missing variables {sorted(missing)}"
            )
        extra = values.keys() - self.variables.keys()
        if extra:
            raise UnknownVariableError(
                f"state sets undeclared variables {sorted(extra)}"
            )
        if validate:
            for name, value in values.items():
                if not self.variables[name].accepts(value):
                    raise DomainError(
                        f"value {value!r} outside domain of variable {name!r}"
                    )
        return State(values)

    def enabled_actions(self, state: State) -> list[Action]:
        """The actions whose guards hold at ``state``, in program order."""
        return [action for action in self.actions if action.enabled(state)]

    def is_terminal(self, state: State) -> bool:
        """Whether no action is enabled (a finite computation may end here)."""
        return not any(action.enabled(state) for action in self.actions)

    def step(self, state: State, action: Action, *, validate: bool = False) -> State:
        """Execute ``action`` at ``state``.

        With ``validate=True`` the successor is checked against variable
        domains — useful in tests to catch statements that escape their
        domain, at a per-step cost.
        """
        successor = action.execute(state)
        if validate:
            for name, value in successor.items():
                if not self.variables[name].accepts(value):
                    raise DomainError(
                        f"action {action.name!r} drove variable {name!r} to "
                        f"{value!r}, outside its domain"
                    )
        return successor

    def successors(self, state: State) -> list[tuple[Action, State]]:
        """All one-step successors ``(action, next_state)`` of ``state``."""
        return [
            (action, action.execute(state))
            for action in self.actions
            if action.enabled(state)
        ]

    # ------------------------------------------------------------------
    # State spaces
    # ------------------------------------------------------------------

    def state_count(self) -> int:
        """Size of the full state space (finite domains only)."""
        return count_states(self.variables.values())

    def state_space(self, *, max_states: int = DEFAULT_MAX_STATES) -> Iterator[State]:
        """Enumerate every state of the program (finite domains only)."""
        return enumerate_states(self.variables.values(), max_states=max_states)

    def random_state(self, rng: Any) -> State:
        """A uniformly random state — the image of an arbitrary transient fault."""
        return random_state(self.variables.values(), rng)

    # ------------------------------------------------------------------
    # Design-method support
    # ------------------------------------------------------------------

    def augmented(self, extra_actions: Iterable[Action], *, name: str | None = None) -> "Program":
        """A new program with ``extra_actions`` added.

        This is the augmentation step of the design problem (Section 3):
        ``p union {ca.1, ..., ca.n}``.
        """
        return Program(
            name if name is not None else f"{self.name}+convergence",
            self.variables.values(),
            (*self.actions, *extra_actions),
        )

    def restricted(self, action_names: Iterable[str], *, name: str | None = None) -> "Program":
        """A new program containing only the named actions."""
        wanted = set(action_names)
        unknown = wanted - {action.name for action in self.actions}
        if unknown:
            raise KeyError(f"unknown actions {sorted(unknown)}")
        return Program(
            name if name is not None else f"{self.name}|restricted",
            self.variables.values(),
            (action for action in self.actions if action.name in wanted),
        )

    def __repr__(self) -> str:
        return (
            f"Program({self.name!r}, {len(self.variables)} variables, "
            f"{len(self.actions)} actions)"
        )
