"""Exhaustive preservation checking.

The paper's theorems are stated in terms of *preservation*: an action
preserves a predicate iff executing it from any state where it is enabled
and the predicate holds yields a state where the predicate still holds
(Section 2). The theorems also use *conditional* preservation ("preserves
each constraint in that partition whenever all constraints in lower
numbered partitions hold", Theorem 3) — preservation checked only at
states satisfying a context predicate.

The paper discharges these obligations by hand proof; this module
discharges them by exhaustive checking over finite instances, reporting
concrete witness states on failure. That substitution is recorded in
DESIGN.md: the antecedents are decidable on finite instances and the
witnesses are exactly the case analysis a hand proof would perform.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.core.actions import Action
from repro.core.predicates import Predicate
from repro.core.state import State

__all__ = ["PreservationViolation", "PreservationResult", "preserves"]


@dataclass(frozen=True)
class PreservationViolation:
    """A concrete witness that an action fails to preserve a predicate."""

    action: Action
    predicate: Predicate
    before: State
    after: State

    def describe(self) -> str:
        return (
            f"action {self.action.name!r} breaks {self.predicate.name!r}: "
            f"{self.before!r} -> {self.after!r}"
        )


@dataclass(frozen=True)
class PreservationResult:
    """Outcome of an exhaustive preservation check.

    ``ok`` is true iff no violation was found among the ``checked``
    relevant states (those where the action was enabled, the predicate
    held, and the context held).
    """

    ok: bool
    checked: int
    violations: tuple[PreservationViolation, ...] = field(default_factory=tuple)

    def __bool__(self) -> bool:
        return self.ok


def preserves(
    action: Action,
    predicate: Predicate,
    states: Iterable[State],
    *,
    given: Predicate | None = None,
    max_violations: int = 3,
) -> PreservationResult:
    """Exhaustively check that ``action`` preserves ``predicate``.

    Args:
        action: The action under test.
        predicate: The predicate that must be preserved.
        states: The states to check — typically every state of a finite
            instance, or every state of the fault-span.
        given: Optional context predicate; states where it fails are
            skipped. This implements Theorem 3's "whenever all constraints
            in lower numbered partitions hold".
        max_violations: Stop collecting witnesses after this many (the
            check still reports ``ok=False`` from the first).

    Returns:
        A :class:`PreservationResult` with witnesses on failure.
    """
    checked = 0
    violations: list[PreservationViolation] = []
    for state in states:
        if not action.enabled(state):
            continue
        if not predicate(state):
            continue
        if given is not None and not given(state):
            continue
        checked += 1
        successor = action.execute(state)
        if not predicate(successor):
            violations.append(
                PreservationViolation(
                    action=action,
                    predicate=predicate,
                    before=state,
                    after=successor,
                )
            )
            if len(violations) >= max_violations:
                break
    return PreservationResult(
        ok=not violations, checked=checked, violations=tuple(violations)
    )
