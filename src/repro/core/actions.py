"""Guarded actions.

An action has the form ``guard -> statement`` (Section 2). The guard is a
:class:`~repro.core.predicates.Predicate`; the statement is an
:class:`Assignment` mapping written variables to new values. Statements
always terminate — an assignment evaluates each right-hand side against
the *old* state and applies all writes simultaneously, which matches the
paper's multiple-assignment notation ``c.j, sn.j := c.(P.j), sn.(P.j)``.

Every action declares its exact read set and write set. The constraint
graph (Section 4) is defined in terms of these sets, so they are explicit
rather than inferred: an action constructor rejects a read set that does
not cover its guard's support, which catches the most common mistake.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from types import MappingProxyType
from typing import Any, Hashable

from repro.core.errors import ActionNotEnabledError
from repro.core.predicates import Predicate
from repro.core.state import State

__all__ = ["Assignment", "Action"]


class Assignment:
    """A simultaneous multiple assignment.

    Maps variable names to either constants or callables of the old state::

        Assignment({
            "c.3": lambda s: s["c.2"],   # copy parent's color
            "sn.3": lambda s: s["sn.2"],  # copy parent's session number
        })

    All right-hand sides are evaluated against the old state before any
    write is applied.
    """

    __slots__ = ("_updates",)

    def __init__(self, updates: Mapping[str, Callable[[State], Any] | Any]) -> None:
        if not updates:
            raise ValueError("an assignment must write at least one variable")
        self._updates = dict(updates)

    @property
    def writes(self) -> frozenset[str]:
        """The names of the variables this assignment writes."""
        return frozenset(self._updates)

    @property
    def updates(self) -> Mapping[str, Callable[[State], Any] | Any]:
        """A read-only view of the update map (for static analysis)."""
        return MappingProxyType(self._updates)

    def evaluate(self, state: Mapping[str, Any]) -> dict[str, Any]:
        """Evaluate every right-hand side against ``state`` without applying.

        Accepts any mapping (not just :class:`State`), which lets
        refinement tools evaluate an assignment against a *view* of a
        state with some variables redirected.
        """
        return {
            name: (rhs(state) if callable(rhs) else rhs)
            for name, rhs in self._updates.items()
        }

    def apply(self, state: State) -> State:
        """Apply the assignment to ``state``, returning the new state."""
        return state.update(self.evaluate(state))

    def __repr__(self) -> str:
        targets = ", ".join(sorted(self._updates))
        return f"Assignment({targets})"


class Action:
    """A guarded action ``guard -> statement``.

    Attributes:
        name: Unique, human-readable identifier (appears in traces,
            constraint graphs, and counterexamples).
        guard: Enabling predicate.
        effect: The statement, an :class:`Assignment`.
        reads: Exact set of variables the action may read — the union of
            the guard's support and every variable a right-hand side
            consults. Must be declared explicitly because right-hand sides
            are opaque callables.
        writes: Derived from ``effect``.
        process: Optional owning process, for distributed designs and
            per-process daemons.
    """

    __slots__ = ("name", "guard", "effect", "reads", "writes", "process")

    def __init__(
        self,
        name: str,
        guard: Predicate,
        effect: Assignment,
        *,
        reads: Iterable[str],
        process: Hashable = None,
    ) -> None:
        self.name = name
        self.guard = guard
        self.effect = effect
        self.reads = frozenset(reads)
        self.writes = effect.writes
        self.process = process
        if guard.support is not None and not guard.support <= self.reads:
            missing = sorted(guard.support - self.reads)
            raise ValueError(
                f"action {name!r} declares reads that omit guard variables "
                f"{missing}; declare every variable the action consults"
            )

    def enabled(self, state: State) -> bool:
        """Whether the guard holds at ``state``."""
        return self.guard(state)

    def inferred_support(self, states: Sequence[State]):
        """The action's *inferred* read/write sets.

        Symbolic guards and right-hand sides are read exactly; opaque
        callables are probed against ``states`` with a recording state
        proxy. Returns an
        :class:`~repro.core.introspect.InferredSupport`; compare against
        the declared ``reads``/``writes`` to detect declaration drift
        (that comparison is :mod:`repro.staticcheck`'s ``RW*`` passes).
        """
        from repro.core.introspect import infer_action_support

        return infer_action_support(self, states)

    def execute(self, state: State) -> State:
        """Execute the action at ``state``.

        Raises:
            ActionNotEnabledError: if the guard does not hold — executing
                a disabled action has no meaning in the model.
        """
        if not self.guard(state):
            raise ActionNotEnabledError(
                f"action {self.name!r} is not enabled at {state!r}"
            )
        return self.effect.apply(state)

    def __repr__(self) -> str:
        return f"Action({self.name!r})"
