"""Exception hierarchy for the ``repro`` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class. Each subclass corresponds to one misuse mode of
the formal model: values outside a variable's domain, references to unknown
variables, actions executed while disabled, ill-formed constraint graphs,
and state spaces too large to enumerate exhaustively.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DomainError",
    "UnknownVariableError",
    "UnknownStateError",
    "ActionNotEnabledError",
    "IllFormedGraphError",
    "StateSpaceTooLargeError",
    "ValidationError",
    "DesignError",
    "LintError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class DomainError(ReproError):
    """A value was assigned to a variable but lies outside its domain."""


class UnknownVariableError(ReproError):
    """A variable name was referenced that the program does not declare."""


class UnknownStateError(ReproError):
    """A state was looked up in a transition system that does not contain it."""


class ActionNotEnabledError(ReproError):
    """An action was executed in a state where its guard does not hold."""


class IllFormedGraphError(ReproError):
    """A constraint graph violates the paper's well-formedness rules.

    The rules (Section 4 of the paper): node labels are mutually exclusive
    variable sets; the action on an edge ``v -> w`` reads only variables in
    ``vars(v) | vars(w)`` and writes only variables in ``vars(w)``.
    """


class StateSpaceTooLargeError(ReproError):
    """Exhaustive enumeration was requested over an infinite or huge space."""


class ValidationError(ReproError):
    """A verification step failed in a way that is a usage error.

    Used for misconfigured checks (for example asking for a fairness mode
    that does not exist), not for the legitimate "property does not hold"
    outcome, which is reported through result objects.
    """


class DesignError(ReproError):
    """A design-method precondition was violated.

    For example: a convergence binding whose action guard is not implied by
    the negation of its constraint, or a layer partition that does not cover
    all convergence actions.
    """


class LintError(ReproError):
    """A declaration provably contradicts what static analysis inferred.

    Raised eagerly at construction time (for example a :class:`Constraint`
    given both a symbolic predicate and an explicit support that disagree),
    as opposed to :class:`~repro.staticcheck.Diagnostic` findings, which
    are collected into a report rather than raised.
    """
