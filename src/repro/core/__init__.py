"""Core formal model and design method.

This package implements the paper's program model (Section 2), the
design method and fault-tolerance definitions (Section 3), constraint
graphs (Section 4), and the three theorems (Sections 5–7).
"""

from repro.core.actions import Action, Assignment
from repro.core.candidate import CandidateTriple, DecompositionReport
from repro.core.composition import parallel, superpose
from repro.core.constraint_graph import ConstraintGraph, GraphEdge, GraphNode
from repro.core.constraints import Constraint, ConvergenceBinding, conjunction
from repro.core.design import DesignReport, NonmaskingDesign, augment
from repro.core.domains import (
    BooleanDomain,
    Domain,
    EnumDomain,
    FiniteDomain,
    IntegerDomain,
    IntegerRangeDomain,
    ModularDomain,
)
from repro.core.errors import (
    ActionNotEnabledError,
    DesignError,
    DomainError,
    IllFormedGraphError,
    ReproError,
    StateSpaceTooLargeError,
    UnknownStateError,
    UnknownVariableError,
    ValidationError,
)
from repro.core.errors import LintError
from repro.core.fingerprint import (
    fingerprint_instance,
    fingerprint_predicate,
    fingerprint_program,
    probe_states,
)
from repro.core.introspect import (
    InferredSupport,
    RecordingState,
    callable_location,
    infer_action_support,
    infer_effect_support,
    infer_predicate_reads,
)
from repro.core.predicates import FALSE, TRUE, Predicate, all_of, any_of, var_equals
from repro.core.pretty import render_program
from repro.core.preservation import (
    PreservationResult,
    PreservationViolation,
    preserves,
)
from repro.core.program import Program
from repro.core.state import State, count_states, enumerate_states, random_state
from repro.core.theorems import (
    ConditionResult,
    TheoremCertificate,
    find_linear_order,
    validate_theorem1,
    validate_theorem2,
    validate_theorem3,
)
from repro.core.variables import Variable, var_name
from repro.core.variant import (
    VariantReport,
    check_variant_strict,
    check_variant_weak,
)

__all__ = [
    "Action",
    "ActionNotEnabledError",
    "Assignment",
    "BooleanDomain",
    "CandidateTriple",
    "ConditionResult",
    "Constraint",
    "ConstraintGraph",
    "ConvergenceBinding",
    "DecompositionReport",
    "DesignError",
    "DesignReport",
    "Domain",
    "DomainError",
    "EnumDomain",
    "FALSE",
    "FiniteDomain",
    "GraphEdge",
    "GraphNode",
    "IllFormedGraphError",
    "InferredSupport",
    "IntegerDomain",
    "IntegerRangeDomain",
    "LintError",
    "ModularDomain",
    "NonmaskingDesign",
    "Predicate",
    "PreservationResult",
    "PreservationViolation",
    "Program",
    "RecordingState",
    "ReproError",
    "State",
    "StateSpaceTooLargeError",
    "TheoremCertificate",
    "TRUE",
    "UnknownStateError",
    "UnknownVariableError",
    "ValidationError",
    "Variable",
    "VariantReport",
    "all_of",
    "any_of",
    "augment",
    "callable_location",
    "check_variant_strict",
    "check_variant_weak",
    "conjunction",
    "count_states",
    "enumerate_states",
    "find_linear_order",
    "fingerprint_instance",
    "fingerprint_predicate",
    "fingerprint_program",
    "infer_action_support",
    "infer_effect_support",
    "infer_predicate_reads",
    "probe_states",
    "parallel",
    "preserves",
    "random_state",
    "render_program",
    "superpose",
    "validate_theorem1",
    "validate_theorem2",
    "validate_theorem3",
    "var_equals",
    "var_name",
]
