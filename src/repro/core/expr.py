"""A small expression DSL for guards and assignments.

The core model takes guards and right-hand sides as opaque callables,
which forces every action to declare its read set by hand and to carry a
hand-written display name. This module provides symbolic expressions
that carry their own variable support and render themselves::

    from repro.core.expr import V, C

    x, y, z = V("x"), V("y"), V("z")
    guard = (x == y)                     # BoolExpr
    action = expr_action("lower-y", guard, {"y": x - 1}, process="y")

    action.reads == frozenset({"x", "y"})   # inferred
    action.guard.name == "(x = y)"          # rendered

Expressions evaluate against states via ``__call__``; boolean
expressions convert to :class:`~repro.core.predicates.Predicate` with
:meth:`BoolExpr.predicate`. The DSL is sugar — everything lowers to the
same :class:`~repro.core.actions.Action` objects the rest of the library
consumes — so hand-written and DSL-built protocols mix freely.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from typing import Any

from repro.core.actions import Action, Assignment
from repro.core.predicates import Predicate

__all__ = ["Expr", "BoolExpr", "V", "C", "ite", "min_", "max_", "expr_action"]


class Expr:
    """A symbolic expression over program variables."""

    def variables(self) -> frozenset[str]:
        raise NotImplementedError

    def __call__(self, state: Mapping[str, Any]) -> Any:
        raise NotImplementedError

    def render(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.render()

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: Any) -> "Expr":
        return _Binary(self, _lift(other), "+", lambda a, b: a + b)

    def __radd__(self, other: Any) -> "Expr":
        return _Binary(_lift(other), self, "+", lambda a, b: a + b)

    def __sub__(self, other: Any) -> "Expr":
        return _Binary(self, _lift(other), "-", lambda a, b: a - b)

    def __rsub__(self, other: Any) -> "Expr":
        return _Binary(_lift(other), self, "-", lambda a, b: a - b)

    def __mul__(self, other: Any) -> "Expr":
        return _Binary(self, _lift(other), "*", lambda a, b: a * b)

    def __rmul__(self, other: Any) -> "Expr":
        return _Binary(_lift(other), self, "*", lambda a, b: a * b)

    def __mod__(self, other: Any) -> "Expr":
        return _Binary(self, _lift(other), "mod", lambda a, b: a % b)

    # -- comparisons (produce BoolExpr) --------------------------------
    def __eq__(self, other: Any) -> "BoolExpr":  # type: ignore[override]
        return BoolExpr(self, _lift(other), "=", lambda a, b: a == b)

    def __ne__(self, other: Any) -> "BoolExpr":  # type: ignore[override]
        return BoolExpr(self, _lift(other), "!=", lambda a, b: a != b)

    def __lt__(self, other: Any) -> "BoolExpr":
        return BoolExpr(self, _lift(other), "<", lambda a, b: a < b)

    def __le__(self, other: Any) -> "BoolExpr":
        return BoolExpr(self, _lift(other), "<=", lambda a, b: a <= b)

    def __gt__(self, other: Any) -> "BoolExpr":
        return BoolExpr(self, _lift(other), ">", lambda a, b: a > b)

    def __ge__(self, other: Any) -> "BoolExpr":
        return BoolExpr(self, _lift(other), ">=", lambda a, b: a >= b)

    __hash__ = object.__hash__  # identity; == is overloaded symbolically


class _Var(Expr):
    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def __call__(self, state: Mapping[str, Any]) -> Any:
        return state[self.name]

    def render(self) -> str:
        return self.name


class _Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def variables(self) -> frozenset[str]:
        return frozenset()

    def __call__(self, state: Mapping[str, Any]) -> Any:
        return self.value

    def render(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


class _Binary(Expr):
    __slots__ = ("left", "right", "symbol", "op")

    def __init__(self, left: Expr, right: Expr, symbol: str,
                 op: Callable[[Any, Any], Any]) -> None:
        self.left = left
        self.right = right
        self.symbol = symbol
        self.op = op

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def __call__(self, state: Mapping[str, Any]) -> Any:
        return self.op(self.left(state), self.right(state))

    def render(self) -> str:
        return f"({self.left.render()} {self.symbol} {self.right.render()})"


class BoolExpr(_Binary):
    """A boolean-valued expression; supports ``&``, ``|``, ``~``."""

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return BoolExpr(self, other, "and", lambda a, b: a and b)

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return BoolExpr(self, other, "or", lambda a, b: a or b)

    def __invert__(self) -> "BoolExpr":
        return _Not(self)

    def predicate(self, *, name: str | None = None) -> Predicate:
        """Lower to a :class:`Predicate` with inferred support.

        The predicate keeps a reference to this expression in its
        ``source`` attribute, so static analysis can recompute the exact
        read set instead of trusting the declared support.
        """
        return Predicate(
            lambda state: bool(self(state)),
            name=name if name is not None else self.render(),
            support=self.variables(),
            source=self,
        )


class _Not(BoolExpr):
    def __init__(self, inner: BoolExpr) -> None:
        # A unary node wearing the binary interface: both sides inner.
        super().__init__(inner, inner, "not", lambda a, b: not a)
        self.inner = inner

    def variables(self) -> frozenset[str]:
        return self.inner.variables()

    def __call__(self, state: Mapping[str, Any]) -> Any:
        return not self.inner(state)

    def render(self) -> str:
        return f"not {self.inner.render()}"


class _Ite(Expr):
    __slots__ = ("condition", "then", "otherwise")

    def __init__(self, condition: BoolExpr, then: Expr, otherwise: Expr) -> None:
        self.condition = condition
        self.then = then
        self.otherwise = otherwise

    def variables(self) -> frozenset[str]:
        return (
            self.condition.variables()
            | self.then.variables()
            | self.otherwise.variables()
        )

    def __call__(self, state: Mapping[str, Any]) -> Any:
        return self.then(state) if self.condition(state) else self.otherwise(state)

    def render(self) -> str:
        return (
            f"(if {self.condition.render()} then {self.then.render()} "
            f"else {self.otherwise.render()})"
        )


class _Fold(Expr):
    __slots__ = ("items", "op", "label")

    def __init__(self, items: tuple[Expr, ...], op: Callable, label: str) -> None:
        if not items:
            raise ValueError(f"{label} needs at least one operand")
        self.items = items
        self.op = op
        self.label = label

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for item in self.items:
            out |= item.variables()
        return out

    def __call__(self, state: Mapping[str, Any]) -> Any:
        return self.op(item(state) for item in self.items)

    def render(self) -> str:
        inner = ", ".join(item.render() for item in self.items)
        return f"{self.label}({inner})"


def V(name: str) -> Expr:
    """A variable reference."""
    return _Var(name)


def C(value: Any) -> Expr:
    """A constant."""
    return _Const(value)


def _lift(value: Any) -> Expr:
    return value if isinstance(value, Expr) else _Const(value)


def ite(condition: BoolExpr, then: Any, otherwise: Any) -> Expr:
    """If-then-else expression."""
    return _Ite(condition, _lift(then), _lift(otherwise))


def min_(*items: Any) -> Expr:
    """Minimum of the operands."""
    return _Fold(tuple(_lift(item) for item in items), min, "min")


def max_(*items: Any) -> Expr:
    """Maximum of the operands."""
    return _Fold(tuple(_lift(item) for item in items), max, "max")


def expr_action(
    name: str,
    guard: BoolExpr,
    updates: Mapping[str, Any],
    *,
    process: Any = None,
) -> Action:
    """Build an :class:`Action` from symbolic guard and updates.

    Read set, write set, and the guard's display name are all inferred
    from the expressions.
    """
    lifted = {target: _lift(rhs) for target, rhs in updates.items()}
    reads = set(guard.variables())
    for rhs in lifted.values():
        reads |= rhs.variables()
    reads |= set(lifted)  # written variables count as read-write state
    # Expressions are callables of the state, so they serve directly as
    # right-hand sides — and stay inspectable (``rhs.variables()``) for
    # static analysis, unlike an opaque wrapping lambda.
    effect = Assignment(dict(lifted))
    return Action(
        name,
        guard.predicate(),
        effect,
        reads=reads,
        process=process,
    )
