"""Constraint graphs (Section 4 of the paper).

A constraint graph of a set of convergence actions is a directed graph
with one edge per action, such that:

(i)  each node is labeled with a set of variables, and node labels are
     mutually exclusive;
(ii) the action labeling the edge ``v -> w`` reads only variables in
     ``vars(v) | vars(w)`` and writes only variables in ``vars(w)``.

The shape of the graph determines which of the paper's theorems applies:

- **out-tree** (one node of indegree 0, all others indegree 1, weakly
  connected) — Theorem 1;
- **self-looping** (no cycle of length greater than 1) — Theorem 2;
- otherwise **cyclic** — Theorem 3 via layering, or the Section 7 state
  refinements.

:class:`ConstraintGraph` validates well-formedness on construction,
derives edges from convergence bindings, classifies itself, computes the
rank function used in the theorem proofs, and supports the two refinements
of Section 7 (restriction to a state subset; restriction to a subset of
the convergence actions, for layered designs).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Hashable

from repro.core.constraints import ConvergenceBinding
from repro.core.errors import IllFormedGraphError
from repro.core.program import Program
from repro.core.state import State

__all__ = ["GraphNode", "GraphEdge", "ConstraintGraph"]


@dataclass(frozen=True)
class GraphNode:
    """A constraint-graph node: a name plus its variable label."""

    name: str
    variables: frozenset[str]

    def __repr__(self) -> str:
        return f"GraphNode({self.name!r}: {{{', '.join(sorted(self.variables))}}})"


@dataclass(frozen=True)
class GraphEdge:
    """A constraint-graph edge: one convergence binding between two nodes."""

    source: GraphNode
    target: GraphNode
    binding: ConvergenceBinding

    @property
    def is_self_loop(self) -> bool:
        return self.source == self.target

    def __repr__(self) -> str:
        return (
            f"GraphEdge({self.source.name} -> {self.target.name} "
            f"[{self.binding.constraint.name}])"
        )


class ConstraintGraph:
    """A validated constraint graph over a set of convergence bindings."""

    def __init__(self, nodes: Iterable[GraphNode], edges: Iterable[GraphEdge]) -> None:
        self.nodes: tuple[GraphNode, ...] = tuple(nodes)
        self.edges: tuple[GraphEdge, ...] = tuple(edges)
        self._validate()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_bindings(
        cls,
        nodes: Iterable[GraphNode],
        bindings: Iterable[ConvergenceBinding],
    ) -> "ConstraintGraph":
        """Derive edges from bindings given a node partition.

        For each binding: the target is the unique node containing the
        action's writes; the source contributes the remaining reads. An
        action whose reads fit entirely inside the target node yields a
        self-loop.
        """
        node_list = list(nodes)
        owner: dict[str, GraphNode] = {}
        for node in node_list:
            # Sorted so a multi-way label overlap names the same variable
            # every run (set iteration order varies with hash seeding).
            for variable in sorted(node.variables):
                if variable in owner:
                    raise IllFormedGraphError(
                        f"variable {variable!r} appears in the labels of both "
                        f"{owner[variable].name!r} and {node.name!r}; labels "
                        "must be mutually exclusive"
                    )
                owner[variable] = node

        edges: list[GraphEdge] = []
        for binding in bindings:
            action = binding.action
            target = cls._unique_owner(owner, action.writes, action.name, "writes")
            external_reads = action.reads - target.variables
            if external_reads:
                source = cls._unique_owner(
                    owner, external_reads, action.name, "reads"
                )
            else:
                source = target
            edges.append(GraphEdge(source=source, target=target, binding=binding))
        return cls(node_list, edges)

    @classmethod
    def from_process_partition(
        cls,
        program: Program,
        bindings: Iterable[ConvergenceBinding],
        *,
        include: Iterable[Hashable] | None = None,
    ) -> "ConstraintGraph":
        """Build nodes from variable ownership: one node per process.

        This is the natural partition for the paper's distributed designs,
        where each node of the graph is a process and its label is the set
        of variables the process owns.
        """
        by_process: dict[Hashable, set[str]] = {}
        for variable in program.variables.values():
            if variable.process is None:
                raise IllFormedGraphError(
                    f"variable {variable.name!r} has no owning process; use "
                    "ConstraintGraph.from_bindings with an explicit partition"
                )
            by_process.setdefault(variable.process, set()).add(variable.name)
        wanted = set(include) if include is not None else set(by_process)
        nodes = [
            GraphNode(name=str(process), variables=frozenset(variables))
            for process, variables in sorted(
                by_process.items(), key=lambda item: str(item[0])
            )
            if process in wanted
        ]
        return cls.from_bindings(nodes, bindings)

    @staticmethod
    def _unique_owner(
        owner: Mapping[str, GraphNode],
        variables: frozenset[str],
        action_name: str,
        role: str,
    ) -> GraphNode:
        found: set[GraphNode] = set()
        # Sorted so the uncovered-variable error names the same variable
        # every run, not whichever the set happens to yield first.
        for variable in sorted(variables):
            if variable not in owner:
                raise IllFormedGraphError(
                    f"action {action_name!r} {role} variable {variable!r} "
                    "which no node label covers"
                )
            found.add(owner[variable])
        if len(found) != 1:
            names = sorted(node.name for node in found)
            raise IllFormedGraphError(
                f"action {action_name!r} {role} span multiple nodes {names}; "
                "each edge has exactly one source and one target node"
            )
        return next(iter(found))

    def _validate(self) -> None:
        owner: dict[str, GraphNode] = {}
        for node in self.nodes:
            for variable in sorted(node.variables):
                if variable in owner and owner[variable] != node:
                    raise IllFormedGraphError(
                        f"variable {variable!r} labels two nodes"
                    )
                owner[variable] = node
        node_set = set(self.nodes)
        for edge in self.edges:
            if edge.source not in node_set or edge.target not in node_set:
                raise IllFormedGraphError(f"edge {edge!r} uses an unknown node")
            action = edge.binding.action
            edge_label = f"{edge.source.name!r} -> {edge.target.name!r}"
            escaped_writes = action.writes - edge.target.variables
            if escaped_writes:
                raise IllFormedGraphError(
                    f"action {action.name!r} on edge {edge_label} writes "
                    f"{sorted(escaped_writes)} outside its target node "
                    f"{edge.target.name!r} (label {sorted(edge.target.variables)})"
                )
            allowed = edge.source.variables | edge.target.variables
            escaped_reads = action.reads - allowed
            if escaped_reads:
                raise IllFormedGraphError(
                    f"action {action.name!r} on edge {edge_label} reads "
                    f"{sorted(escaped_reads)} outside the union of its nodes "
                    f"(label {sorted(allowed)})"
                )
            escaped_support = edge.binding.constraint.support - allowed
            if escaped_support:
                raise IllFormedGraphError(
                    f"constraint {edge.binding.constraint.name!r} on edge "
                    f"{edge_label} reads {sorted(escaped_support)} outside the "
                    f"union of its nodes (label {sorted(allowed)})"
                )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def bindings(self) -> tuple[ConvergenceBinding, ...]:
        return tuple(edge.binding for edge in self.edges)

    def active_nodes(self) -> list[GraphNode]:
        """Nodes incident to at least one edge, in declaration order."""
        incident = {edge.source for edge in self.edges}
        incident |= {edge.target for edge in self.edges}
        return [node for node in self.nodes if node in incident]

    def incoming(self, node: GraphNode) -> list[GraphEdge]:
        """Edges whose target is ``node`` (self-loops included)."""
        return [edge for edge in self.edges if edge.target == node]

    def outgoing(self, node: GraphNode) -> list[GraphEdge]:
        """Edges whose source is ``node`` (self-loops included)."""
        return [edge for edge in self.edges if edge.source == node]

    def indegree(self, node: GraphNode) -> int:
        return len(self.incoming(node))

    # ------------------------------------------------------------------
    # Classification
    # ------------------------------------------------------------------

    def is_weakly_connected(self) -> bool:
        """Whether the active nodes form one weakly connected component."""
        active = self.active_nodes()
        if len(active) <= 1:
            return True
        neighbours: dict[GraphNode, set[GraphNode]] = {node: set() for node in active}
        for edge in self.edges:
            neighbours[edge.source].add(edge.target)
            neighbours[edge.target].add(edge.source)
        seen = {active[0]}
        frontier = [active[0]]
        while frontier:
            node = frontier.pop()
            for other in neighbours[node]:
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return len(seen) == len(active)

    def is_out_tree(self) -> bool:
        """Whether the graph is an out-tree (Theorem 1's shape).

        One active node of indegree zero, every other active node of
        indegree one, weakly connected. Self-loops count toward indegree,
        so any self-loop disqualifies the graph, as in the paper's
        definition.
        """
        active = self.active_nodes()
        if not active:
            return False
        indegrees = [self.indegree(node) for node in active]
        roots = sum(1 for d in indegrees if d == 0)
        others_ok = all(d == 1 for d in indegrees if d != 0)
        return roots == 1 and others_ok and self.is_weakly_connected()

    def has_proper_cycle(self) -> bool:
        """Whether some cycle of length greater than 1 exists."""
        order = self._topological_order_ignoring_self_loops()
        return order is None

    def is_self_looping(self) -> bool:
        """Whether every cycle is a self-loop (Theorem 2's shape).

        Out-trees are a special case: an acyclic graph is trivially
        self-looping.
        """
        return not self.has_proper_cycle()

    def _topological_order_ignoring_self_loops(self) -> list[GraphNode] | None:
        """Kahn's algorithm over non-self-loop edges; ``None`` if cyclic."""
        active = self.active_nodes()
        indegree = {node: 0 for node in active}
        successors: dict[GraphNode, list[GraphNode]] = {node: [] for node in active}
        for edge in self.edges:
            if edge.is_self_loop:
                continue
            indegree[edge.target] += 1
            successors[edge.source].append(edge.target)
        ready = [node for node in active if indegree[node] == 0]
        order: list[GraphNode] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for nxt in successors[node]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    ready.append(nxt)
        if len(order) != len(active):
            return None
        return order

    def ranks(self) -> dict[GraphNode, int]:
        """The rank function from the proofs of Theorems 1 and 2.

        ``rank(j) = 1 + max{rank(k) | edge k -> j, k != j}`` with the max
        of the empty set taken as 0, so source nodes have rank 1. Defined
        only for self-looping graphs.

        Raises:
            IllFormedGraphError: if the graph has a proper cycle.
        """
        order = self._topological_order_ignoring_self_loops()
        if order is None:
            raise IllFormedGraphError(
                "ranks are defined only for self-looping constraint graphs"
            )
        rank: dict[GraphNode, int] = {}
        for node in order:
            best = 0
            for edge in self.incoming(node):
                if not edge.is_self_loop:
                    best = max(best, rank[edge.source])
            rank[node] = 1 + best
        return rank

    def classification(self) -> str:
        """One of ``"out-tree"``, ``"self-looping"``, ``"cyclic"``."""
        if self.is_out_tree():
            return "out-tree"
        if self.is_self_looping():
            return "self-looping"
        return "cyclic"

    # ------------------------------------------------------------------
    # Section 7 refinements
    # ------------------------------------------------------------------

    def restricted_to_states(self, states: Sequence[State]) -> "ConstraintGraph":
        """Drop edges whose constraint holds at every supplied state.

        Section 7, first refinement: in reasoning about a closed state
        subset ``R``, edges of constraints true throughout ``R`` can be
        ignored. A cyclic graph may become self-looping this way.
        """
        kept = [
            edge
            for edge in self.edges
            if not all(edge.binding.constraint.holds(state) for state in states)
        ]
        return ConstraintGraph(self.nodes, kept)

    def subgraph(self, bindings: Iterable[ConvergenceBinding]) -> "ConstraintGraph":
        """The graph restricted to a subset of the convergence actions.

        Section 7, layered refinement: each layer of a hierarchical
        partition has its own constraint graph over the same nodes.
        """
        wanted = {id(binding) for binding in bindings}
        kept = [edge for edge in self.edges if id(edge.binding) in wanted]
        return ConstraintGraph(self.nodes, kept)

    def __repr__(self) -> str:
        return (
            f"ConstraintGraph({len(self.nodes)} nodes, {len(self.edges)} edges, "
            f"{self.classification()})"
        )
