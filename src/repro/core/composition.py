"""Program composition.

Distributed systems are built by composing protocols — the paper's
Section 5.1 applications (snapshot, termination detection, distributed
reset) all ride on a diffusing computation. This module provides the two
composition forms the library's protocols use:

- :func:`parallel` — the union of two programs. Shared variables must
  agree on their domains; action names must not collide. The composite's
  computations interleave both programs' actions; a predicate closed in
  both components is closed in the composite.
- :func:`superpose` — layered composition: the *base* program is
  untouched (its variables are read-only to the superposed layer) and
  the layer's actions may read base variables but write only its own.
  Superposition preserves every property of the base program by
  construction — the checker-friendly way to add monitors, counters, or
  application payloads on top of a stabilizing protocol.
"""

from __future__ import annotations

from repro.core.errors import DesignError
from repro.core.program import Program

__all__ = ["parallel", "superpose"]


def parallel(first: Program, second: Program, *, name: str | None = None) -> Program:
    """The union composition ``first || second``.

    Raises:
        DesignError: on action-name collisions or on shared variables
            with different domains (ownership must agree too).
    """
    variables = dict(first.variables)
    for var_name, variable in second.variables.items():
        if var_name in variables:
            existing = variables[var_name]
            if existing.domain != variable.domain:
                raise DesignError(
                    f"shared variable {var_name!r} has different domains in "
                    "the two components"
                )
            if existing.process != variable.process:
                raise DesignError(
                    f"shared variable {var_name!r} has different owners in "
                    "the two components"
                )
        else:
            variables[var_name] = variable
    first_names = {action.name for action in first.actions}
    for action in second.actions:
        if action.name in first_names:
            raise DesignError(
                f"action name {action.name!r} appears in both components; "
                "rename one side"
            )
    return Program(
        name if name is not None else f"({first.name} || {second.name})",
        variables.values(),
        (*first.actions, *second.actions),
    )


def superpose(base: Program, layer: Program, *, name: str | None = None) -> Program:
    """Layered composition: ``layer`` observes ``base`` but cannot write it.

    Raises:
        DesignError: if any layer action writes a base variable (that
            would be interference, not superposition), or on name
            collisions.
    """
    base_variables = set(base.variables)
    for action in layer.actions:
        touched = action.writes & base_variables
        if touched:
            raise DesignError(
                f"layer action {action.name!r} writes base variables "
                f"{sorted(touched)}; superposition must be write-disjoint"
            )
    return parallel(
        base,
        layer,
        name=name if name is not None else f"{base.name}+{layer.name}",
    )
