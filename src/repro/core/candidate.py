"""Candidate triples.

The design problem (Section 3) starts from a candidate triple ``(p, S, T)``
where ``p`` consists solely of closure actions that preserve both the
invariant ``S`` and the fault-span ``T``. The designer then supplies
convergence actions so that the augmented program is T-tolerant for S.

:class:`CandidateTriple` bundles the three pieces together with the
constraint decomposition of ``S`` and provides exhaustive sanity checks
on finite instances:

- the decomposition property ``(and of constraints) and T == S``;
- closure of ``S`` and ``T`` under the candidate's actions.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.core.constraints import Constraint, conjunction
from repro.core.errors import DesignError
from repro.core.predicates import TRUE, Predicate
from repro.core.program import Program
from repro.core.state import State

__all__ = ["CandidateTriple", "DecompositionReport"]


@dataclass(frozen=True)
class DecompositionReport:
    """Outcome of checking the constraint decomposition over states.

    The design method requires ``(and constraints) and T  =>  S`` —
    convergence drives the program into the constraints' conjunction, and
    that must land inside the invariant. The paper states the stronger
    "equivales" for the general method, but its own token-ring design
    (Section 7.1) deliberately picks constraints *stronger* than ``S``
    ("we propose to satisfy the second conjunct by satisfying the
    constraints ``x.j = x.(j+1)``"), so implication is the binding
    requirement and ``equivalent`` is reported separately.
    """

    ok: bool
    equivalent: bool
    checked: int
    #: States where ``(and constraints) and T`` holds but ``S`` does not.
    mismatches: tuple[State, ...] = ()

    def __bool__(self) -> bool:
        return self.ok


@dataclass(frozen=True)
class CandidateTriple:
    """A program of closure actions, its invariant, and its fault-span.

    Attributes:
        program: The closure actions only (``p`` in the paper).
        invariant: ``S`` — states from which every computation meets the
            specification.
        constraints: The decomposition of ``S`` into locally checkable
            conjuncts. Together with ``fault_span`` their conjunction must
            equal ``S``.
        fault_span: ``T`` — the set of states reachable in the presence of
            the tolerated faults. ``TRUE`` for stabilizing programs.
    """

    program: Program
    invariant: Predicate
    constraints: tuple[Constraint, ...]
    fault_span: Predicate = TRUE

    def __post_init__(self) -> None:
        if not self.constraints:
            raise DesignError("a candidate triple needs at least one constraint")
        names = [c.name for c in self.constraints]
        if len(set(names)) != len(names):
            raise DesignError(f"duplicate constraint names in {names}")
        unknown = frozenset().union(*(c.support for c in self.constraints))
        unknown -= self.program.variable_names
        if unknown:
            raise DesignError(
                f"constraints reference undeclared variables {sorted(unknown)}"
            )

    def constraint(self, name: str) -> Constraint:
        """The constraint with the given name."""
        for c in self.constraints:
            if c.name == name:
                return c
        raise KeyError(f"no constraint named {name!r}")

    def constraints_conjunction(self) -> Predicate:
        """The conjunction of all constraints (without ``T``)."""
        return conjunction(self.constraints, name="and(constraints)")

    def check_decomposition(
        self, states: Iterable[State], *, max_mismatches: int = 5
    ) -> DecompositionReport:
        """Exhaustively check the decomposition over ``states``.

        ``ok`` requires ``(and constraints) and T => S``; ``equivalent``
        additionally reports whether the reverse implication held too.
        """
        conj = self.constraints_conjunction()
        mismatches: list[State] = []
        equivalent = True
        checked = 0
        for state in states:
            checked += 1
            lhs = conj(state) and self.fault_span(state)
            rhs = self.invariant(state)
            if lhs and not rhs:
                if len(mismatches) < max_mismatches:
                    mismatches.append(state)
            if lhs != rhs:
                equivalent = False
        return DecompositionReport(
            ok=not mismatches,
            equivalent=equivalent,
            checked=checked,
            mismatches=tuple(mismatches),
        )

    def __repr__(self) -> str:
        return (
            f"CandidateTriple({self.program.name!r}, S={self.invariant.name!r}, "
            f"T={self.fault_span.name!r}, {len(self.constraints)} constraints)"
        )
