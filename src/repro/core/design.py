"""The design workflow of Section 3.

Given a candidate triple ``(p, S, T)`` — closure actions preserving both
``S`` and ``T`` — and a set of convergence bindings, this module builds
the augmented program ``p ∪ {ca.1, …, ca.n}`` and validates it against
the paper's sufficient conditions.

:class:`NonmaskingDesign` is the designer-facing bundle: it holds the
candidate, the bindings, the node partition of the constraint graph, and
(for Theorem 3 designs) the layer partition. :meth:`NonmaskingDesign.validate`
selects the strongest applicable theorem automatically: Theorem 1 when the
graph is an out-tree, else Theorem 2 when it is self-looping, else
Theorem 3 when layers were supplied.

Merging: the paper merges convergence actions with closure actions sharing
a statement (Section 5.1). A binding whose action carries the same *name*
as a closure action of the candidate replaces that closure action in the
augmented program, so the deployed program contains one merged action, as
in the paper's final program listings.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.candidate import CandidateTriple
from repro.core.constraint_graph import ConstraintGraph, GraphNode
from repro.core.constraints import ConvergenceBinding
from repro.core.errors import DesignError
from repro.core.program import Program
from repro.core.state import State
from repro.core.theorems import (
    TheoremCertificate,
    validate_theorem1,
    validate_theorem2,
    validate_theorem3,
)

__all__ = ["augment", "DesignReport", "NonmaskingDesign"]


def augment(
    candidate: CandidateTriple,
    bindings: Sequence[ConvergenceBinding],
    *,
    name: str | None = None,
) -> Program:
    """Build the augmented program ``p ∪ {ca.1, …, ca.n}``.

    A convergence action whose name matches a closure action replaces it
    (the paper's merged form); all other convergence actions are appended.
    """
    merged: dict[str, object] = {}
    for binding in bindings:
        existing = merged.get(binding.action.name)
        if existing is not None and existing is not binding.action:
            raise DesignError(
                f"two different actions share the name {binding.action.name!r}; "
                "a single action object may serve several bindings, distinct "
                "actions need distinct names"
            )
        merged[binding.action.name] = binding.action
    actions = [
        merged.pop(action.name, action) for action in candidate.program.actions
    ]
    actions.extend(merged.values())
    program_name = name if name is not None else f"{candidate.program.name}+q"
    return Program(program_name, candidate.program.variables.values(), actions)  # type: ignore[arg-type]


@dataclass(frozen=True)
class DesignReport:
    """Result of validating a nonmasking design.

    Attributes:
        ok: Whether some theorem's conditions were fully satisfied.
        selected: The certificate that validated the design, or the most
            specific failed certificate when none did.
        certificates: Every certificate attempted, in the order tried.
    """

    ok: bool
    selected: TheoremCertificate
    certificates: tuple[TheoremCertificate, ...]

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        header = "design VALID" if self.ok else "design NOT validated"
        return f"{header}\n{self.selected.describe()}"


class NonmaskingDesign:
    """A complete nonmasking fault-tolerance design.

    Bundles the candidate triple, the convergence bindings, the constraint
    graph partition, and the optional Theorem 3 layers. Protocol modules
    construct one of these per protocol so that examples, tests and
    benchmarks all validate through the same entry point.
    """

    def __init__(
        self,
        name: str,
        candidate: CandidateTriple,
        bindings: Sequence[ConvergenceBinding],
        nodes: Sequence[GraphNode],
        *,
        layers: Sequence[Sequence[ConvergenceBinding]] | None = None,
    ) -> None:
        if not bindings:
            raise DesignError("a design needs at least one convergence binding")
        bound = {id(b.constraint) for b in bindings}
        declared = {id(c) for c in candidate.constraints}
        if not bound <= declared:
            raise DesignError(
                "every binding's constraint must come from the candidate triple"
            )
        if layers is not None:
            flat = [binding for layer in layers for binding in layer]
            if {id(b) for b in flat} != {id(b) for b in bindings}:
                raise DesignError("layers must partition exactly the given bindings")
        self.name = name
        self.candidate = candidate
        self.bindings = tuple(bindings)
        self.nodes = tuple(nodes)
        self.layers = tuple(tuple(layer) for layer in layers) if layers else None
        self._graph: ConstraintGraph | None = None
        self._program: Program | None = None

    @property
    def graph(self) -> ConstraintGraph:
        """The constraint graph of all convergence bindings."""
        if self._graph is None:
            self._graph = ConstraintGraph.from_bindings(self.nodes, self.bindings)
        return self._graph

    @property
    def program(self) -> Program:
        """The augmented (deployed) program, with merged actions deduped."""
        if self._program is None:
            self._program = augment(self.candidate, self.bindings, name=self.name)
        return self._program

    def validate(
        self,
        states: Sequence[State],
        *,
        theorem: str = "auto",
    ) -> DesignReport:
        """Validate the design against the paper's sufficient conditions.

        Args:
            states: The finite state set over which preservation
                obligations are discharged (typically the full state space
                of the instance, or its fault-span).
            theorem: ``"auto"`` picks by graph shape; ``"1"``, ``"2"`` or
                ``"3"`` forces a specific theorem.
        """
        states = list(states)
        attempted: list[TheoremCertificate] = []

        def t1() -> TheoremCertificate:
            return validate_theorem1(self.candidate, self.graph, states)

        def t2() -> TheoremCertificate:
            return validate_theorem2(self.candidate, self.graph, states)

        def t3() -> TheoremCertificate:
            if self.layers is None:
                raise DesignError(
                    f"design {self.name!r} has no layer partition; Theorem 3 "
                    "requires one"
                )
            return validate_theorem3(self.candidate, self.layers, self.nodes, states)

        if theorem == "1":
            certificate = t1()
            attempted.append(certificate)
        elif theorem == "2":
            certificate = t2()
            attempted.append(certificate)
        elif theorem == "3":
            certificate = t3()
            attempted.append(certificate)
        elif theorem == "auto":
            if self.layers is not None:
                certificate = t3()
                attempted.append(certificate)
            elif self.graph.is_out_tree():
                certificate = t1()
                attempted.append(certificate)
            else:
                certificate = t2()
                attempted.append(certificate)
        else:
            raise DesignError(f"unknown theorem selector {theorem!r}")

        return DesignReport(
            ok=certificate.ok,
            selected=certificate,
            certificates=tuple(attempted),
        )

    def __repr__(self) -> str:
        layered = f", {len(self.layers)} layers" if self.layers else ""
        return (
            f"NonmaskingDesign({self.name!r}, {len(self.bindings)} bindings"
            f"{layered})"
        )
