"""Program variables.

A variable has a name, a domain, and optionally an owning process. Process
ownership is not part of the paper's core model, but the paper's designs
are distributed programs where each variable belongs to one node (``c.j``
and ``sn.j`` belong to node ``j``); recording the owner lets the library
derive per-process read/write locality and default constraint-graph node
labels automatically.

Variable names follow the paper's dotted convention, e.g. ``"c.3"`` is the
color variable of node 3 and ``"x.0"`` the counter of ring node 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable

from repro.core.domains import Domain

__all__ = ["Variable", "var_name"]


def var_name(base: str, process: Hashable) -> str:
    """Build a dotted variable name, ``var_name("c", 3) == "c.3"``."""
    return f"{base}.{process}"


@dataclass(frozen=True)
class Variable:
    """A program variable.

    Attributes:
        name: Unique name within a program, e.g. ``"sn.2"``.
        domain: The set of values the variable may take.
        process: The process (node) that owns the variable, or ``None``
            for a shared/global variable.
    """

    name: str
    domain: Domain = field(compare=False)
    process: Hashable = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be nonempty")

    def accepts(self, value: Any) -> bool:
        """Whether ``value`` lies in this variable's domain."""
        return value in self.domain

    def __repr__(self) -> str:
        owner = f", process={self.process!r}" if self.process is not None else ""
        return f"Variable({self.name!r}, {self.domain!r}{owner})"
