"""Compositional convergence certification over projected state spaces.

The paper's whole point (Theorems 1–3, Section 4) is that the theorem
antecedents can be discharged *per constraint-graph edge* without ever
enumerating the product state space. The full checkers in
:mod:`repro.verification` and :mod:`repro.kernel` do enumerate it, which
caps them at roughly ``10^5`` states; this module discharges the same
antecedents over *projections* — for the edge ``v -> w`` only the joint
state space of ``vars(v) | vars(w)`` is built — so a 200-node out-tree
whose product space has ``4^200`` states certifies in milliseconds.

Why a projection suffices
-------------------------

Every obligation the theorems impose has the shape

    for all states s:  guard(s) and context(s)  =>  post(a(s))

and the truth of the body depends only on the variables in
``P = reads(a) | writes(a) | support(context) | support(post)``. Domains
are independent, so every assignment to ``P`` extends to a full state:
checking the body over the projected space of ``P`` is *equivalent* to
checking it over the full space — **provided the declared read/write/
support sets are truthful**. Truthfulness is certified up front with the
same battery-probe discipline the packed kernel uses
(:func:`repro.kernel.compile.action_supports_ok`, the RW001–RW003 bar)
plus :func:`repro.core.introspect.infer_predicate_reads` for constraint
supports, and backstopped at runtime: a lying opaque callable that reads
outside ``P`` raises :class:`~repro.core.errors.UnknownVariableError` on
the partial state, which converts to a refusal, never a wrong verdict.

Refusals, not negatives
-----------------------

The theorems are sufficient, not necessary. A failed obligation therefore
never yields a negative verdict — the certifier emits a *structured
refusal* naming the failed obligation, and callers (the verification
service, the CLI's ``--method auto``) fall back to full exploration.
"""

from __future__ import annotations

import time
from collections.abc import Iterator, Sequence
from dataclasses import dataclass
from typing import Any

from repro.core.constraint_graph import ConstraintGraph
from repro.core.constraints import Constraint, ConvergenceBinding
from repro.core.design import NonmaskingDesign
from repro.core.errors import (
    IllFormedGraphError,
    UnknownVariableError,
    ValidationError,
)
from repro.core.fingerprint import probe_states
from repro.core.introspect import infer_predicate_reads
from repro.core.predicates import TRUE, Predicate
from repro.core.state import State
from repro.kernel.codec import StateCodec
from repro.kernel.compile import action_supports_ok
from repro.observability import MetricsRegistry, Tracer
from repro.staticcheck.interference import StaticCertificate, StaticDischarger

__all__ = [
    "DEFAULT_PROJECTION_LIMIT",
    "Obligation",
    "CompositionalCertificate",
    "certify_compositional",
]

#: Largest projected state space an obligation may enumerate. Projections
#: above this refuse rather than silently degrade into full exploration.
DEFAULT_PROJECTION_LIMIT = 65_536

#: Theorem labels, matching :mod:`repro.core.theorems` verbatim.
_THEOREM_1 = "Theorem 1 (out-tree constraint graph)"
_THEOREM_2 = "Theorem 2 (self-looping constraint graph)"


@dataclass(frozen=True)
class Obligation:
    """One discharged proof obligation of the certificate.

    Attributes:
        name: Which theorem antecedent this discharges, e.g.
            ``"closure-preserves"`` or ``"establishes-in-one-step"``.
        subject: The (action, constraint) pair or edge the obligation is
            about, e.g. ``"propagate.2 preserves R.3"``.
        variables: The projection the obligation was enumerated over
            (empty when discharged symbolically).
        space: Size of the projected state space (0 when not enumerated).
        checked: States actually visited (after guard/context filtering).
        discharged_by: ``"enumerated"`` (projection swept),
            ``"disjoint-writes"`` (writes miss the support — preservation
            is vacuous), ``"static"`` (proved by the abstract
            interpreter over the expression DSL, with a matching
            :class:`~repro.staticcheck.interference.StaticCertificate`
            in the certificate), or ``"trivial"`` (antecedent holds by
            identity, e.g. preserving ``T == true``).
        seconds: Wall-clock cost of discharging this obligation.
    """

    name: str
    subject: str
    variables: tuple[str, ...]
    space: int
    checked: int
    discharged_by: str
    seconds: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "subject": self.subject,
            "variables": list(self.variables),
            "space": self.space,
            "checked": self.checked,
            "discharged_by": self.discharged_by,
            "seconds": self.seconds,
        }


@dataclass(frozen=True)
class CompositionalCertificate:
    """A machine-checkable record of a compositional certification.

    ``status == "certified"`` means every theorem antecedent was
    discharged over sound projections, so the design is nonmasking
    ``T``-tolerant by the theorem — without building the product space.
    ``status == "refused"`` means some obligation could not be discharged
    locally; ``refusal`` names it. A refusal says nothing about the
    design (the theorems are sufficient, not necessary) — callers fall
    back to full exploration.
    """

    design: str
    theorem: str
    status: str  # "certified" | "refused"
    classification: str  # "masking" | "nonmasking" | "" when refused
    stabilizing: bool
    obligations: tuple[Obligation, ...]
    refusal: str
    total_states: int
    max_projection: int
    seconds: float
    edges: int = 0
    static_certificates: tuple[StaticCertificate, ...] = ()

    @property
    def ok(self) -> bool:
        return self.status == "certified"

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        if not self.ok:
            return (
                f"compositional certification REFUSED for {self.design!r}: "
                f"{self.refusal}"
            )
        enumerated = sum(
            1 for ob in self.obligations if ob.discharged_by == "enumerated"
        )
        static = sum(
            1 for ob in self.obligations if ob.discharged_by == "static"
        )
        return (
            f"compositional certificate for {self.design!r}: {self.theorem}; "
            f"{self.classification} (stabilizing={self.stabilizing}); "
            f"{len(self.obligations)} obligations over {self.edges} edges "
            f"({enumerated} enumerated, {static} static, "
            f"max projection {self.max_projection} "
            f"states vs {self.total_states} total) in {self.seconds:.3f}s"
        )

    def to_json(self) -> dict[str, Any]:
        return {
            "design": self.design,
            "theorem": self.theorem,
            "status": self.status,
            "ok": self.ok,
            "classification": self.classification,
            "stabilizing": self.stabilizing,
            "refusal": self.refusal,
            "total_states": self.total_states,
            "max_projection": self.max_projection,
            "edges": self.edges,
            "seconds": self.seconds,
            "obligations": [ob.as_dict() for ob in self.obligations],
            "static_certificates": [
                certificate.as_dict()
                for certificate in self.static_certificates
            ],
        }


class _Refusal(Exception):
    """Internal control flow: an obligation could not be discharged."""

    def __init__(self, obligation: str, detail: str) -> None:
        super().__init__(f"{obligation}: {detail}")
        self.obligation = obligation
        self.detail = detail


class _Projector:
    """Builds and sweeps projected state spaces with packed codecs."""

    def __init__(self, design: NonmaskingDesign, limit: int) -> None:
        self._variables = design.program.variables
        self._limit = limit
        self._codecs: dict[frozenset[str], StateCodec] = {}
        self.max_projection = 0
        self.projected_states = 0

    def codec(self, names: frozenset[str], *, subject: str) -> StateCodec:
        codec = self._codecs.get(names)
        if codec is not None:
            return codec
        ordered = sorted(names)
        domains = []
        for name in ordered:
            domain = self._variables[name].domain
            if not domain.is_finite:
                raise _Refusal(
                    "finite-projection",
                    f"{subject}: variable {name!r} has an infinite domain; "
                    "the projection cannot be enumerated",
                )
            domains.append(tuple(domain.values()))
        codec = StateCodec(ordered, domains)
        if codec.size > self._limit:
            raise _Refusal(
                "projection-size",
                f"{subject}: projection over {ordered} has {codec.size} "
                f"states, above the limit of {self._limit}",
            )
        self._codecs[names] = codec
        self.max_projection = max(self.max_projection, codec.size)
        return codec

    def states(self, codec: StateCodec) -> Iterator[State]:
        self.projected_states += codec.size
        for code in range(codec.size):
            yield codec.decode_state(code)


def _discharge_static(
    name: str,
    subject: str,
    certificate: StaticCertificate | None,
    started: float,
    obligations: list[Obligation],
    certificates: list[StaticCertificate],
) -> bool:
    """Record a successful static discharge; ``False`` means don't know.

    The static route is one-directional: a ``None`` certificate only
    sends the obligation to the projected sweep, never to a refusal.
    """
    if certificate is None:
        return False
    certificates.append(certificate)
    obligations.append(
        Obligation(
            name=name,
            subject=subject,
            variables=(),
            space=0,
            checked=certificate.cases,
            discharged_by="static",
            seconds=time.perf_counter() - started,
        )
    )
    return True


def _certify(
    design: NonmaskingDesign,
    *,
    fairness: str,
    projector: _Projector,
    obligations: list[Obligation],
    discharger: StaticDischarger | None,
    certificates: list[StaticCertificate],
) -> tuple[str, str, bool, int, int]:
    """Discharge every obligation; raise :class:`_Refusal` on the first failure.

    Returns ``(theorem, classification, stabilizing, edges, max_projection)``.
    """
    candidate = design.candidate
    program = design.program
    constraints = candidate.constraints

    # -- applicability -------------------------------------------------
    if fairness != "weak":
        raise _Refusal(
            "fairness",
            f"theorems guarantee convergence under weak fairness only, "
            f"got fairness={fairness!r}",
        )
    if candidate.fault_span is not TRUE:
        raise _Refusal(
            "fault-span",
            "projected closure of a non-trivial fault span is not supported; "
            "only stabilizing designs (T == true) certify compositionally",
        )
    if design.layers is not None:
        raise _Refusal(
            "layered",
            "Theorem 3's contextual obligations quantify over lower-layer "
            "constraints and do not project edge-locally",
        )
    try:
        graph = design.graph
    except IllFormedGraphError as error:
        raise _Refusal("constraint-graph", str(error)) from error

    shape = graph.classification()
    if shape == "out-tree":
        theorem = _THEOREM_1
    elif shape == "self-looping":
        theorem = _THEOREM_2
    else:
        raise _Refusal(
            "graph-shape",
            f"constraint graph is {shape!r}; Theorems 1 and 2 require an "
            "out-tree or self-looping graph",
        )

    # -- declared supports must be truthful (projection soundness) -----
    battery = probe_states(program)
    started = time.perf_counter()
    checked_actions = {action.name: action for action in candidate.program.actions}
    for binding in design.bindings:
        checked_actions[binding.action.name] = binding.action
    for action in checked_actions.values():
        if not action_supports_ok(action, battery):
            raise _Refusal(
                "support-honesty",
                f"action {action.name!r} consults variables outside its "
                "declared read/write sets; projections over the declared "
                "sets would be unsound",
            )
    for constraint in constraints:
        inferred = infer_predicate_reads(constraint.predicate, battery)
        if not inferred.reads <= constraint.support:
            extra = sorted(inferred.reads - constraint.support)
            raise _Refusal(
                "support-honesty",
                f"constraint {constraint.name!r} reads {extra} outside its "
                "declared support",
            )
    obligations.append(
        Obligation(
            name="support-honesty",
            subject=f"{len(checked_actions)} actions, "
            f"{len(constraints)} constraints",
            variables=(),
            space=0,
            checked=len(battery),
            discharged_by="enumerated",
            seconds=time.perf_counter() - started,
        )
    )

    # -- the invariant must be the conjunction of the constraints ------
    _check_decomposition(candidate.invariant, constraints, battery, obligations)

    # -- closure: every closure action preserves every constraint ------
    # Theorems 1 and 2 state this antecedent over the *closure* program;
    # binding actions (including merged replacements) are covered by the
    # per-binding merged-behaviour obligation below.
    _closure_obligations(
        candidate.program,
        constraints,
        projector,
        obligations,
        discharger,
        certificates,
    )

    # -- per-binding convergence obligations ---------------------------
    merged_disjoint = 0
    for binding in design.bindings:
        merged_disjoint += _binding_obligations(
            binding, constraints, projector, obligations, discharger, certificates
        )
    if merged_disjoint:
        obligations.append(
            Obligation(
                name="merged-behaviour",
                subject=f"{merged_disjoint} binding/constraint pairs with "
                "writes disjoint from the constraint support",
                variables=(),
                space=0,
                checked=merged_disjoint,
                discharged_by="disjoint-writes",
                seconds=0.0,
            )
        )
    # Every convergence action preserves T — trivial, T == true here.
    obligations.append(
        Obligation(
            name="preserves-fault-span",
            subject=f"{len(design.bindings)} convergence actions preserve "
            "T == true",
            variables=(),
            space=0,
            checked=len(design.bindings),
            discharged_by="trivial",
            seconds=0.0,
        )
    )

    # -- Theorem 2 only: per-node linear orders ------------------------
    if theorem == _THEOREM_2:
        _order_obligations(graph, projector, obligations, discharger, certificates)

    # -- classification ------------------------------------------------
    classification = _classify(candidate.invariant, constraints, battery, projector)
    # T == true, so the fault span is the whole space: stabilizing.
    stabilizing = True

    total_states = 1
    for variable in program.variables.values():
        total_states *= len(tuple(variable.domain.values()))
    return theorem, classification, stabilizing, len(graph.edges), total_states


def _check_decomposition(
    invariant: Predicate,
    constraints: Sequence[Constraint],
    battery: Sequence[State],
    obligations: list[Obligation],
) -> None:
    """Probe that ``S`` agrees with the conjunction of the constraints.

    The design method's contract (Section 3) is ``S == (and of all
    constraints) and T``; the theorem conclusions are about the
    conjunction, so a stronger ``S`` would make a certificate overclaim.
    The supports must agree exactly, and the predicates must agree on the
    probe battery — the same sound-direction probing bar staticcheck
    uses. A disagreement refuses; agreement plus the support check is the
    decomposition contract the theorem validators already assume.
    """
    started = time.perf_counter()
    union = frozenset().union(*(c.support for c in constraints))
    if invariant.support is None or not invariant.support <= union:
        raise _Refusal(
            "invariant-decomposition",
            f"invariant {invariant.name!r} has support outside the union of "
            "the constraint supports; S must be the conjunction of the "
            "constraints (and T)",
        )
    checked = 0
    for state in battery:
        checked += 1
        if invariant(state) != all(c.holds(state) for c in constraints):
            raise _Refusal(
                "invariant-decomposition",
                f"invariant {invariant.name!r} disagrees with the "
                "conjunction of the constraints on a probe state",
            )
    obligations.append(
        Obligation(
            name="invariant-decomposition",
            subject=invariant.name,
            variables=(),
            space=0,
            checked=checked,
            discharged_by="enumerated",
            seconds=time.perf_counter() - started,
        )
    )


def _sweep(
    name: str,
    subject: str,
    variables: frozenset[str],
    projector: _Projector,
    body,  # Callable[[State], bool]
) -> Obligation:
    """Enumerate the projection of ``variables`` and require ``body`` on it."""
    started = time.perf_counter()
    codec = projector.codec(variables, subject=subject)
    checked = 0
    try:
        for state in projector.states(codec):
            checked += 1
            if not body(state):
                raise _Refusal(name, f"{subject}: fails at {dict(state)!r}")
    except UnknownVariableError as error:
        # Runtime soundness backstop: an opaque callable read outside the
        # certified support sets. Never a wrong verdict — a refusal.
        raise _Refusal(
            "support-honesty",
            f"{subject}: a callable read a variable outside the projection "
            f"({error}); declared supports are not truthful",
        ) from error
    return Obligation(
        name=name,
        subject=subject,
        variables=tuple(codec.names),
        space=codec.size,
        checked=checked,
        discharged_by="enumerated",
        seconds=time.perf_counter() - started,
    )


def _closure_obligations(
    program,
    constraints: Sequence[Constraint],
    projector: _Projector,
    obligations: list[Obligation],
    discharger: StaticDischarger | None,
    certificates: list[StaticCertificate],
) -> None:
    """Every program action preserves every constraint (closure of ``S``).

    This is the first antecedent of Theorems 1 and 2 with the fault span
    ``T == true``. An action whose writes miss a constraint's support
    preserves it vacuously — those pairs discharge without enumeration,
    which prunes the ``O(actions x constraints)`` pair space to the
    ``O(n)`` neighbouring pairs on bounded-degree topologies. The vacuous
    pairs are aggregated into one summary obligation to keep the
    certificate compact. Remaining pairs are first offered to the static
    discharger; only pairs it cannot prove are swept.
    """
    disjoint = 0
    for action in program.actions:
        for constraint in constraints:
            subject = f"{action.name} preserves {constraint.name}"
            if not action.writes & constraint.support:
                disjoint += 1
                continue
            if discharger is not None:
                started = time.perf_counter()
                if _discharge_static(
                    "closure-preserves",
                    subject,
                    discharger.closure_preserves(action, constraint, subject),
                    started,
                    obligations,
                    certificates,
                ):
                    continue
            joint = action.reads | action.writes | constraint.support

            def body(state, action=action, constraint=constraint):
                if not action.enabled(state):
                    return True
                if not constraint.holds(state):
                    return True
                return constraint.holds(action.execute(state))

            obligations.append(
                _sweep("closure-preserves", subject, joint, projector, body)
            )
    if disjoint:
        obligations.append(
            Obligation(
                name="closure-preserves",
                subject=f"{disjoint} action/constraint pairs with writes "
                "disjoint from the constraint support",
                variables=(),
                space=0,
                checked=disjoint,
                discharged_by="disjoint-writes",
                seconds=0.0,
            )
        )


def _binding_obligations(
    binding: ConvergenceBinding,
    constraints: Sequence[Constraint],
    projector: _Projector,
    obligations: list[Obligation],
    discharger: StaticDischarger | None,
    certificates: list[StaticCertificate],
) -> int:
    """The per-binding antecedents shared by Theorems 1 and 2.

    Returns the number of merged-behaviour pairs discharged vacuously by
    disjoint writes (the caller aggregates them into one obligation).
    """
    action = binding.action
    own = binding.constraint

    # not c  =>  the convergence action is enabled.
    subject = f"{own.name} violated => {action.name} enabled"
    started = time.perf_counter()
    if not (
        discharger is not None
        and _discharge_static(
            "enabled-when-violated",
            subject,
            discharger.enabled_when_violated(binding, subject),
            started,
            obligations,
            certificates,
        )
    ):

        def enabled_body(state):
            return binding.constraint.holds(state) or action.enabled(state)

        obligations.append(
            _sweep(
                "enabled-when-violated",
                subject,
                own.support | action.reads,
                projector,
                enabled_body,
            )
        )

    # Executing the action establishes c in one step.
    subject = f"{action.name} establishes {own.name}"
    started = time.perf_counter()
    if not (
        discharger is not None
        and _discharge_static(
            "establishes-in-one-step",
            subject,
            discharger.establishes(binding, subject),
            started,
            obligations,
            certificates,
        )
    ):

        def establishes_body(state):
            if not action.enabled(state):
                return True
            return own.holds(action.execute(state))

        obligations.append(
            _sweep(
                "establishes-in-one-step",
                subject,
                action.reads | action.writes | own.support,
                projector,
                establishes_body,
            )
        )

    # Merged behaviour: given its own constraint already holds, the
    # action preserves every other constraint (so firing inside S stays
    # inside S even for merged closure/convergence actions).
    disjoint = 0
    for other in constraints:
        subject = f"{action.name} preserves {other.name} given {own.name}"
        if not action.writes & other.support:
            disjoint += 1
            continue
        if discharger is not None:
            started = time.perf_counter()
            if _discharge_static(
                "merged-behaviour",
                subject,
                discharger.merged_behaviour(binding, other, subject),
                started,
                obligations,
                certificates,
            ):
                continue

        def merged_body(state, action=action, own=own, other=other):
            if not action.enabled(state):
                return True
            if not own.holds(state) or not other.holds(state):
                return True
            return other.holds(action.execute(state))

        obligations.append(
            _sweep(
                "merged-behaviour",
                subject,
                action.reads | action.writes | other.support | own.support,
                projector,
                merged_body,
            )
        )
    return disjoint


def _order_obligations(
    graph: ConstraintGraph,
    projector: _Projector,
    obligations: list[Obligation],
    discharger: StaticDischarger | None,
    certificates: list[StaticCertificate],
) -> None:
    """Theorem 2's third antecedent, per target node, over projections.

    For each node with several incoming convergence actions, a linear
    order must exist in which each action preserves the constraints of
    its predecessors. The greedy construction from
    :func:`repro.core.theorems.find_linear_order` is reused; each
    pairwise preservation check is offered to the static discharger
    first and swept over the pair's own projection when it abstains.
    """
    memo: dict[tuple[int, int], bool] = {}
    sweeps = 0

    def pair_preserves(action, constraint: Constraint) -> bool:
        nonlocal sweeps
        key = (id(action), id(constraint))
        if key not in memo:
            if not action.writes & constraint.support:
                memo[key] = True
            else:
                subject = f"{action.name} preserves {constraint.name}"
                if discharger is not None:
                    certificate = discharger.order_preserves(
                        action, constraint, subject
                    )
                    if certificate is not None:
                        certificates.append(certificate)
                        memo[key] = True
                        return True
                joint = action.reads | action.writes | constraint.support

                def body(state):
                    if not action.enabled(state):
                        return True
                    if not constraint.holds(state):
                        return True
                    return constraint.holds(action.execute(state))

                try:
                    _sweep("linear-order", subject, joint, projector, body)
                    sweeps += 1
                    memo[key] = True
                except _Refusal as refusal:
                    if refusal.obligation != "linear-order":
                        raise
                    sweeps += 1
                    memo[key] = False
        return memo[key]

    for node in graph.active_nodes():
        incoming = [edge.binding for edge in graph.incoming(node)]
        if len(incoming) <= 1:
            continue
        sweeps_before = sweeps
        started = time.perf_counter()
        remaining = list(incoming)
        order: list[ConvergenceBinding] = []
        while remaining:
            pick = None
            for candidate_binding in remaining:
                others = [b for b in remaining if b is not candidate_binding]
                if all(
                    pair_preserves(other.action, candidate_binding.constraint)
                    for other in others
                ):
                    pick = candidate_binding
                    break
            if pick is None:
                names = [b.constraint.name for b in incoming]
                raise _Refusal(
                    "linear-order",
                    f"node {node.name!r}: no linear order among {names} in "
                    "which each action preserves the constraints of its "
                    "predecessors",
                )
            order.append(pick)
            remaining.remove(pick)
        obligations.append(
            Obligation(
                name="linear-order",
                subject=f"node {node.name}: "
                + " -> ".join(b.constraint.name for b in order),
                variables=(),
                space=0,
                checked=len(incoming),
                # "static" when the order was found without a single new
                # projected sweep (all pairs proved statically, vacuous by
                # disjoint writes, or already memoised without sweeping).
                discharged_by=(
                    "static"
                    if discharger is not None and sweeps == sweeps_before
                    else "enumerated"
                ),
                seconds=time.perf_counter() - started,
            )
        )


def _classify(
    invariant: Predicate,
    constraints: Sequence[Constraint],
    battery: Sequence[State],
    projector: _Projector,
) -> str:
    """Classify as masking or nonmasking without enumerating the space.

    With ``T == true`` the tolerance is *masking* iff ``S`` is
    tautological. ``S is TRUE`` certifies masking by identity. For
    nonmasking, a concrete witness is produced: a constraint falsifiable
    on its own support projection is overlaid onto a probe state and
    ``S`` is evaluated directly at the resulting full state — one
    evaluation, cheap at any ``n``. No witness found refuses — this
    classification must stay bit-identical to the full method's.
    """
    if invariant is TRUE:
        return "masking"
    base = battery[0]
    for constraint in constraints:
        codec = projector.codec(
            constraint.support, subject=f"classification of {constraint.name}"
        )
        for state in projector.states(codec):
            if not constraint.holds(state):
                witness = base.update(dict(state))
                if not invariant(witness):
                    return "nonmasking"
                break  # this constraint's falsification did not falsify S
    raise _Refusal(
        "classification",
        f"could not decide whether {invariant.name!r} is tautological "
        "without enumerating the full space",
    )


def certify_compositional(
    design: NonmaskingDesign,
    *,
    fairness: str = "weak",
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    projection_limit: int = DEFAULT_PROJECTION_LIMIT,
    semantic: bool = True,
) -> CompositionalCertificate:
    """Certify a design nonmasking tolerant from per-edge projections.

    Args:
        design: The complete design (candidate triple, bindings, nodes).
        fairness: Scheduling fairness; the theorems require ``"weak"`` —
            anything else refuses.
        tracer: Optional tracer; emits ``compositional.start`` and one of
            ``compositional.certified`` / ``compositional.refused``.
        metrics: Optional registry; counts obligations, projected states
            and outcomes, and times the certification.
        projection_limit: Largest projected space an obligation may
            enumerate before refusing.
        semantic: Offer each obligation to the abstract-interpretation
            discharger (:mod:`repro.staticcheck.interference`) before
            sweeping its projection. Sound in one direction only — a
            static proof skips the sweep, a static "don't know" falls
            back to it — so verdicts are bit-identical either way;
            ``False`` disables the fast path entirely.

    Returns:
        A :class:`CompositionalCertificate` — ``status == "certified"``
        with the full obligation list, or ``status == "refused"`` naming
        the failed obligation. Never a negative verdict.

    Raises:
        ValidationError: for ill-typed arguments (not a design).
    """
    if not isinstance(design, NonmaskingDesign):
        raise ValidationError(
            "compositional certification requires a NonmaskingDesign, "
            f"got {type(design).__name__}"
        )
    if tracer is not None:
        tracer.emit("compositional.start", design=design.name, fairness=fairness)
    started = time.perf_counter()
    obligations: list[Obligation] = []
    certificates: list[StaticCertificate] = []
    projector = _Projector(design, projection_limit)
    discharger = (
        StaticDischarger(design, tracer=tracer, metrics=metrics)
        if semantic
        else None
    )

    def finish(certificate: CompositionalCertificate) -> CompositionalCertificate:
        if metrics is not None:
            metrics.timer("compositional").record(certificate.seconds)
            metrics.counter("compositional.obligations").add(
                len(certificate.obligations)
            )
            metrics.counter(
                "compositional.certified"
                if certificate.ok
                else "compositional.refused"
            ).add(1)
            metrics.counter("compositional.projected_states").add(
                projector.projected_states
            )
        if tracer is not None:
            kind = (
                "compositional.certified"
                if certificate.ok
                else "compositional.refused"
            )
            tracer.emit(
                kind,
                design=certificate.design,
                theorem=certificate.theorem,
                obligations=len(certificate.obligations),
                max_projection=certificate.max_projection,
                refusal=certificate.refusal,
            )
        return certificate

    try:
        theorem, classification, stabilizing, edges, total = _certify(
            design,
            fairness=fairness,
            projector=projector,
            obligations=obligations,
            discharger=discharger,
            certificates=certificates,
        )
    except _Refusal as refusal:
        return finish(
            CompositionalCertificate(
                design=design.name,
                theorem="",
                status="refused",
                classification="",
                stabilizing=False,
                obligations=tuple(obligations),
                refusal=str(refusal),
                total_states=0,
                max_projection=projector.max_projection,
                seconds=time.perf_counter() - started,
                static_certificates=tuple(certificates),
            )
        )
    return finish(
        CompositionalCertificate(
            design=design.name,
            theorem=theorem,
            status="certified",
            classification=classification,
            stabilizing=stabilizing,
            obligations=tuple(obligations),
            refusal="",
            total_states=total,
            max_projection=projector.max_projection,
            seconds=time.perf_counter() - started,
            edges=edges,
            static_certificates=tuple(certificates),
        )
    )
