"""A seeded ill-formed design exercising every diagnostic code.

The linter's own test fixture: :func:`ill_formed_design` builds a small
:class:`~repro.core.design.NonmaskingDesign` that violates every checked
property at least once, and :func:`selftest` asserts the full catalog
fires. The fixture doubles as executable documentation — each binding
below is one canonical way to get each diagnostic.

The design is deliberately *constructible*: every violation is of a kind
the eager validators cannot see (opaque callables, lying subclasses,
node labels that are only combined lazily), which is exactly the gap the
linter exists to close. Nothing here ever builds ``design.graph`` — that
would raise on the first violation.
"""

from __future__ import annotations

from typing import Any

from repro.core.actions import Action, Assignment
from repro.core.candidate import CandidateTriple
from repro.core.constraint_graph import GraphNode
from repro.core.constraints import Constraint, ConvergenceBinding, conjunction
from repro.core.design import NonmaskingDesign
from repro.core.domains import IntegerRangeDomain
from repro.core.expr import C, V, expr_action
from repro.core.predicates import TRUE, Predicate
from repro.core.program import Program
from repro.core.variables import Variable

__all__ = ["EXPECTED_CODES", "ill_formed_design", "ill_formed_faults", "selftest"]

#: Every code the fixture is designed to trigger — the full catalog.
EXPECTED_CODES = frozenset(
    {
        "RW001",
        "RW002",
        "RW003",
        "CG001",
        "CG002",
        "CG003",
        "GD001",
        "VT001",
        "TH001",
        "CP001",
        "DF001",
        "DF002",
        "DF003",
        "DF004",
        "IF001",
        "IF002",
        "IF003",
        "IF004",
    }
)


class _LyingAssignment(Assignment):
    """An assignment whose ``writes`` declaration hides one target.

    The probe catches it: evaluating the updates produces a key the
    declaration omits (``RW002``).
    """

    def __init__(self, updates, *, declared: frozenset[str]) -> None:
        super().__init__(updates)
        self._declared = declared

    @property
    def writes(self) -> frozenset[str]:
        return self._declared


def ill_formed_design() -> NonmaskingDesign:
    """A design triggering every code in :data:`EXPECTED_CODES`.

    The violations, binding by binding:

    - ``conv_a``/``conv_b`` form a two-node cycle ``A <-> B`` → CG003
      (no layer partition is supplied);
    - ``conv_c`` has an opaque guard that secretly reads ``d`` while
      declaring only ``{c}`` → RW001 (and the secret read escapes the
      self-loop's node union → CG002 co-fires);
    - ``conv_d`` uses a :class:`_LyingAssignment` that writes ``e``
      without declaring it → RW002 (``e`` is also never read → VT001);
    - ``conv_sh`` over-declares a read of ``o`` its symbolic guard and
      right-hand sides never consult → RW003;
    - ``conv_g`` has the symbolically unsatisfiable guard
      ``g != 0 and g > 5`` over ``g in 0..3`` → GD001 (and a violated
      constraint with a disabled action → TH001 co-fires);
    - ``conv_w`` "establishes" ``w == 0`` by writing ``w := 1`` → TH001;
    - ``conv_o`` reads ``{c, d}`` which span two source nodes → CG002;
    - nodes ``O1`` and ``O2`` both label ``shared`` → CG001;
    - ``conv_big`` converges a variable with 100000 values, too many to
      project compositionally (and too many for guard enumeration, so
      GD001 stays quiet) → CP001;
    - ``conv_g``'s unsatisfiable guard is also *symbolic*, so the
      abstract interpreter proves it dead → DF001 (alongside GD001);
    - ``conv_dfx`` assigns ``x2 + 10`` with ``x2 in 0..3`` — every
      abstract post-value lies outside the domain → DF002;
    - ``conv_taut`` guards on ``x3 >= 0``, true for the whole domain →
      DF003;
    - ``conv_noop`` assigns ``x4 := x4`` — provably a no-op → DF004;
    - closure actions ``race_one``/``race_two`` on different processes
      are co-enabled at ``r = 0`` and write ``r`` with the provably
      different values 1 and 2 → IF001;
    - the two bindings targeting node ``Y`` certainly break each
      other's constraints (each resets its own variable while setting
      the other's to 1), so no Theorem 2 linear order exists → IF002;
    - ``conv_w`` is enabled at ``w = 1`` yet leaves ``Cw`` false —
      a concrete establishment-failure witness → IF003 (and TH001 via
      the probe route);
    - the declared fault of :func:`ill_formed_faults` writes ``c``,
      which ``conv_o``'s guard reads but ``Co`` does not observe →
      IF004 when the faults are passed to ``lint_design``.
    """
    bit = IntegerRangeDomain(0, 1)
    variables = [
        Variable("a", bit),
        Variable("b", bit),
        Variable("c", IntegerRangeDomain(0, 2)),
        Variable("d", bit),
        Variable("e", bit),
        Variable("g", IntegerRangeDomain(0, 3)),
        Variable("o", IntegerRangeDomain(0, 2)),
        Variable("shared", bit),
        Variable("w", bit),
        Variable("big", IntegerRangeDomain(0, 99_999)),
        Variable("x2", IntegerRangeDomain(0, 3)),
        Variable("x3", IntegerRangeDomain(0, 3)),
        Variable("x4", IntegerRangeDomain(0, 3)),
        Variable("y1", bit),
        Variable("y2", bit),
        Variable("r", IntegerRangeDomain(0, 2)),
    ]

    a, b, c, d, g, o, shared, w, big = (
        V("a"), V("b"), V("c"), V("d"), V("g"), V("o"), V("shared"), V("w"),
        V("big"),
    )
    x2, x3, x4, y1, y2, r = V("x2"), V("x3"), V("x4"), V("y1"), V("y2"), V("r")

    # CG003: conv_a and conv_b form the cycle A <-> B.
    constraint_a = Constraint("Ca", a == b)
    conv_a = expr_action("conv_a", a != b, {"a": b})
    constraint_b = Constraint("Cb", b == a)
    conv_b = expr_action("conv_b", b != a, {"b": a})

    # RW001: the guard consults d but declares (and supports) only {c}.
    def _sneaky_guard(state: Any) -> bool:
        return state["c"] != 0 and state["d"] >= 0

    constraint_c = Constraint("Cc", c == 0)
    conv_c = Action(
        "conv_c",
        Predicate(_sneaky_guard, name="c != 0 (secretly reads d)", support={"c"}),
        Assignment({"c": 0}),
        reads={"c"},
    )

    # RW002: the statement produces a write to e it does not declare.
    constraint_d = Constraint("Cd", d == 0)
    conv_d = Action(
        "conv_d",
        (d != 0).predicate(),
        _LyingAssignment({"d": 0, "e": 0}, declared=frozenset({"d"})),
        reads={"d"},
    )

    # RW003: declares a read of o that is provably never consulted.
    constraint_sh = Constraint("Csh", shared == 0)
    conv_sh = Action(
        "conv_sh",
        (shared != 0).predicate(),
        Assignment({"shared": 0}),
        reads={"shared", "o"},
    )

    # GD001: g != 0 and g > 5 has no satisfying value in 0..3.
    constraint_g = Constraint("Cg", g == 0)
    conv_g = expr_action("conv_g", (g != 0) & (g > 5), {"g": 0})

    # TH001: fires when w != 0 but establishes w == 1, not w == 0.
    constraint_w = Constraint("Cw", w == 0)
    conv_w = expr_action("conv_w", w != 0, {"w": 1})

    # CG002: external reads {c, d} span the two nodes C and D.
    constraint_o = Constraint("Co", o == 0)
    conv_o = expr_action("conv_o", (o != 0) & (c >= 0) & (d >= 0), {"o": 0})

    # CP001: 100000 values defeat the 65536-state projection limit (and
    # the 20000-combination guard enumeration, keeping GD001 quiet).
    constraint_big = Constraint("Cbig", big == 0)
    conv_big = expr_action("conv_big", big != 0, {"big": 0})

    # DF002: x2 + 10 lands in 10..13, disjoint from x2's domain 0..3.
    constraint_dfx = Constraint("Cx2", x2 == 0)
    conv_dfx = expr_action("conv_dfx", x2 != 0, {"x2": x2 + C(10)})

    # DF003: x3 >= 0 holds for the whole domain 0..3.
    constraint_taut = Constraint("Cx3", x3 == 0)
    conv_taut = expr_action("conv_taut", x3 >= 0, {"x3": 0})

    # DF004: x4 := x4 provably changes nothing.
    constraint_noop = Constraint("Cx4", x4 == 0)
    conv_noop = expr_action("conv_noop", x4 != 0, {"x4": x4})

    # IF002: each Y-binding resets its own variable but sets the other's
    # to 1 — certain mutual breaks force a must-follow cycle.
    constraint_y1 = Constraint("Cy1", y1 == 0)
    conv_y1 = expr_action("conv_y1", y1 != 0, {"y1": 0, "y2": 1})
    constraint_y2 = Constraint("Cy2", y2 == 0)
    conv_y2 = expr_action("conv_y2", y2 != 0, {"y2": 0, "y1": 1})

    # IF001: closure actions of different processes, co-enabled at
    # r = 0, writing r with provably different values.
    race_one = expr_action("race_one", r == 0, {"r": 1}, process="p1")
    race_two = expr_action("race_two", r == 0, {"r": 2}, process="p2")

    constraints = (
        constraint_a,
        constraint_b,
        constraint_c,
        constraint_d,
        constraint_sh,
        constraint_g,
        constraint_w,
        constraint_o,
        constraint_big,
        constraint_dfx,
        constraint_taut,
        constraint_noop,
        constraint_y1,
        constraint_y2,
    )
    closure = Program("ill-formed-closure", variables, [race_one, race_two])
    candidate = CandidateTriple(
        program=closure,
        invariant=conjunction(constraints, name="S"),
        constraints=constraints,
    )
    bindings = [
        ConvergenceBinding(constraint_a, conv_a),
        ConvergenceBinding(constraint_b, conv_b),
        ConvergenceBinding(constraint_c, conv_c),
        ConvergenceBinding(constraint_d, conv_d),
        ConvergenceBinding(constraint_sh, conv_sh),
        ConvergenceBinding(constraint_g, conv_g),
        ConvergenceBinding(constraint_w, conv_w),
        ConvergenceBinding(constraint_o, conv_o),
        ConvergenceBinding(constraint_big, conv_big),
        ConvergenceBinding(constraint_dfx, conv_dfx),
        ConvergenceBinding(constraint_taut, conv_taut),
        ConvergenceBinding(constraint_noop, conv_noop),
        ConvergenceBinding(constraint_y1, conv_y1),
        ConvergenceBinding(constraint_y2, conv_y2),
    ]
    nodes = [
        GraphNode("A", frozenset({"a"})),
        GraphNode("B", frozenset({"b"})),
        GraphNode("C", frozenset({"c"})),
        GraphNode("D", frozenset({"d", "e"})),
        GraphNode("G", frozenset({"g"})),
        GraphNode("W", frozenset({"w"})),
        GraphNode("O1", frozenset({"o", "shared"})),
        GraphNode("O2", frozenset({"shared"})),  # CG001: shared twice
        GraphNode("BIG", frozenset({"big"})),
        GraphNode("X2", frozenset({"x2"})),
        GraphNode("X3", frozenset({"x3"})),
        GraphNode("X4", frozenset({"x4"})),
        GraphNode("Y", frozenset({"y1", "y2"})),  # IF002: two incoming
        GraphNode("R", frozenset({"r"})),
    ]
    return NonmaskingDesign("ill-formed", candidate, bindings, nodes)


def ill_formed_faults() -> "list[Action]":
    """Declared faults for the fixture: one fault writing ``c``.

    ``conv_o``'s guard reads ``c`` but its constraint ``Co`` observes
    only ``o``, so the fault can toggle the action's enabledness
    invisibly to the constraint → IF004.
    """
    return [Action("fault.c", TRUE, Assignment({"c": 1}), reads=())]


def selftest() -> "tuple[Any, frozenset[str]]":
    """Lint the fixture; return ``(report, codes that failed to fire)``.

    An empty second element means the full catalog is exercised — the
    linter's smoke test, also used by the test suite.
    """
    from repro.staticcheck.passes import lint_design

    report = lint_design(ill_formed_design(), faults=ill_formed_faults())
    return report, EXPECTED_CODES - report.codes()
