"""A seeded ill-formed design exercising every diagnostic code.

The linter's own test fixture: :func:`ill_formed_design` builds a small
:class:`~repro.core.design.NonmaskingDesign` that violates every checked
property at least once, and :func:`selftest` asserts the full catalog
fires. The fixture doubles as executable documentation — each binding
below is one canonical way to get each diagnostic.

The design is deliberately *constructible*: every violation is of a kind
the eager validators cannot see (opaque callables, lying subclasses,
node labels that are only combined lazily), which is exactly the gap the
linter exists to close. Nothing here ever builds ``design.graph`` — that
would raise on the first violation.
"""

from __future__ import annotations

from typing import Any

from repro.core.actions import Action, Assignment
from repro.core.candidate import CandidateTriple
from repro.core.constraint_graph import GraphNode
from repro.core.constraints import Constraint, ConvergenceBinding, conjunction
from repro.core.design import NonmaskingDesign
from repro.core.domains import IntegerRangeDomain
from repro.core.expr import V, expr_action
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.variables import Variable

__all__ = ["EXPECTED_CODES", "ill_formed_design", "selftest"]

#: Every code the fixture is designed to trigger — the full catalog.
EXPECTED_CODES = frozenset(
    {
        "RW001",
        "RW002",
        "RW003",
        "CG001",
        "CG002",
        "CG003",
        "GD001",
        "VT001",
        "TH001",
        "CP001",
    }
)


class _LyingAssignment(Assignment):
    """An assignment whose ``writes`` declaration hides one target.

    The probe catches it: evaluating the updates produces a key the
    declaration omits (``RW002``).
    """

    def __init__(self, updates, *, declared: frozenset[str]) -> None:
        super().__init__(updates)
        self._declared = declared

    @property
    def writes(self) -> frozenset[str]:
        return self._declared


def ill_formed_design() -> NonmaskingDesign:
    """A design triggering every code in :data:`EXPECTED_CODES`.

    The violations, binding by binding:

    - ``conv_a``/``conv_b`` form a two-node cycle ``A <-> B`` → CG003
      (no layer partition is supplied);
    - ``conv_c`` has an opaque guard that secretly reads ``d`` while
      declaring only ``{c}`` → RW001 (and the secret read escapes the
      self-loop's node union → CG002 co-fires);
    - ``conv_d`` uses a :class:`_LyingAssignment` that writes ``e``
      without declaring it → RW002 (``e`` is also never read → VT001);
    - ``conv_sh`` over-declares a read of ``o`` its symbolic guard and
      right-hand sides never consult → RW003;
    - ``conv_g`` has the symbolically unsatisfiable guard
      ``g != 0 and g > 5`` over ``g in 0..3`` → GD001 (and a violated
      constraint with a disabled action → TH001 co-fires);
    - ``conv_w`` "establishes" ``w == 0`` by writing ``w := 1`` → TH001;
    - ``conv_o`` reads ``{c, d}`` which span two source nodes → CG002;
    - nodes ``O1`` and ``O2`` both label ``shared`` → CG001;
    - ``conv_big`` converges a variable with 100000 values, too many to
      project compositionally (and too many for guard enumeration, so
      GD001 stays quiet) → CP001.
    """
    bit = IntegerRangeDomain(0, 1)
    variables = [
        Variable("a", bit),
        Variable("b", bit),
        Variable("c", IntegerRangeDomain(0, 2)),
        Variable("d", bit),
        Variable("e", bit),
        Variable("g", IntegerRangeDomain(0, 3)),
        Variable("o", IntegerRangeDomain(0, 2)),
        Variable("shared", bit),
        Variable("w", bit),
        Variable("big", IntegerRangeDomain(0, 99_999)),
    ]

    a, b, c, d, g, o, shared, w, big = (
        V("a"), V("b"), V("c"), V("d"), V("g"), V("o"), V("shared"), V("w"),
        V("big"),
    )

    # CG003: conv_a and conv_b form the cycle A <-> B.
    constraint_a = Constraint("Ca", a == b)
    conv_a = expr_action("conv_a", a != b, {"a": b})
    constraint_b = Constraint("Cb", b == a)
    conv_b = expr_action("conv_b", b != a, {"b": a})

    # RW001: the guard consults d but declares (and supports) only {c}.
    def _sneaky_guard(state: Any) -> bool:
        return state["c"] != 0 and state["d"] >= 0

    constraint_c = Constraint("Cc", c == 0)
    conv_c = Action(
        "conv_c",
        Predicate(_sneaky_guard, name="c != 0 (secretly reads d)", support={"c"}),
        Assignment({"c": 0}),
        reads={"c"},
    )

    # RW002: the statement produces a write to e it does not declare.
    constraint_d = Constraint("Cd", d == 0)
    conv_d = Action(
        "conv_d",
        (d != 0).predicate(),
        _LyingAssignment({"d": 0, "e": 0}, declared=frozenset({"d"})),
        reads={"d"},
    )

    # RW003: declares a read of o that is provably never consulted.
    constraint_sh = Constraint("Csh", shared == 0)
    conv_sh = Action(
        "conv_sh",
        (shared != 0).predicate(),
        Assignment({"shared": 0}),
        reads={"shared", "o"},
    )

    # GD001: g != 0 and g > 5 has no satisfying value in 0..3.
    constraint_g = Constraint("Cg", g == 0)
    conv_g = expr_action("conv_g", (g != 0) & (g > 5), {"g": 0})

    # TH001: fires when w != 0 but establishes w == 1, not w == 0.
    constraint_w = Constraint("Cw", w == 0)
    conv_w = expr_action("conv_w", w != 0, {"w": 1})

    # CG002: external reads {c, d} span the two nodes C and D.
    constraint_o = Constraint("Co", o == 0)
    conv_o = expr_action("conv_o", (o != 0) & (c >= 0) & (d >= 0), {"o": 0})

    # CP001: 100000 values defeat the 65536-state projection limit (and
    # the 20000-combination guard enumeration, keeping GD001 quiet).
    constraint_big = Constraint("Cbig", big == 0)
    conv_big = expr_action("conv_big", big != 0, {"big": 0})

    constraints = (
        constraint_a,
        constraint_b,
        constraint_c,
        constraint_d,
        constraint_sh,
        constraint_g,
        constraint_w,
        constraint_o,
        constraint_big,
    )
    closure = Program("ill-formed-closure", variables, [])
    candidate = CandidateTriple(
        program=closure,
        invariant=conjunction(constraints, name="S"),
        constraints=constraints,
    )
    bindings = [
        ConvergenceBinding(constraint_a, conv_a),
        ConvergenceBinding(constraint_b, conv_b),
        ConvergenceBinding(constraint_c, conv_c),
        ConvergenceBinding(constraint_d, conv_d),
        ConvergenceBinding(constraint_sh, conv_sh),
        ConvergenceBinding(constraint_g, conv_g),
        ConvergenceBinding(constraint_w, conv_w),
        ConvergenceBinding(constraint_o, conv_o),
        ConvergenceBinding(constraint_big, conv_big),
    ]
    nodes = [
        GraphNode("A", frozenset({"a"})),
        GraphNode("B", frozenset({"b"})),
        GraphNode("C", frozenset({"c"})),
        GraphNode("D", frozenset({"d", "e"})),
        GraphNode("G", frozenset({"g"})),
        GraphNode("W", frozenset({"w"})),
        GraphNode("O1", frozenset({"o", "shared"})),
        GraphNode("O2", frozenset({"shared"})),  # CG001: shared twice
        GraphNode("BIG", frozenset({"big"})),
    ]
    return NonmaskingDesign("ill-formed", candidate, bindings, nodes)


def selftest() -> "tuple[Any, frozenset[str]]":
    """Lint the fixture; return ``(report, codes that failed to fire)``.

    An empty second element means the full catalog is exercised — the
    linter's smoke test, also used by the test suite.
    """
    from repro.staticcheck.passes import lint_design

    report = lint_design(ill_formed_design())
    return report, EXPECTED_CODES - report.codes()
