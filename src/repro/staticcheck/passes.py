"""The lint passes: side-condition checks that run before any state space.

Entry points, from narrowest to widest:

- :func:`lint_program` — the ``RW*``/``GD001``/``VT001`` passes over one
  program (optionally counting an invariant's reads for ``VT001``);
- :func:`lint_design` — everything above plus the constraint-graph side
  conditions (``CG*``), theorem prechecks (``TH001``), and the
  compositional-projection feasibility check (``CP001``) of a
  :class:`~repro.core.design.NonmaskingDesign`;
- :func:`lint_case` / :func:`lint_library` — the registered protocol
  library, by case name.

With ``semantic=True`` (the default) two analysis layers join in: the
abstract interpreter of :mod:`repro.staticcheck.absint` proves dataflow
facts per action (``DF*``), and the interference detectors of
:mod:`repro.staticcheck.interference` examine action pairs (``IF*``).

Every pass is O(actions x probe states) or O(nodes + edges) — none of
them enumerates the state space, which is the point: the linter answers
in milliseconds what exhaustive verification answers in seconds, and it
answers *before* that cost is paid. The semantic passes obey the same
bound: their case splits are over a formula's own variables, capped by
the abstract interpreter's budget, never over the product space.

Soundness policy: a diagnostic is only emitted when its premise is
certain. Probe-recorded accesses are real reads, so ``RW001``/``RW002``
fire on probed evidence; the absence of an access proves nothing, so
``RW003`` requires symbolic exactness and an undecidable guard (one that
raises during enumeration) never yields ``GD001``. Theorem prechecks
(``TH001``) evaluate the paper's universally quantified conditions on
genuine sampled states, so a failure is a genuine counterexample. The
semantic passes inherit the discipline through the abstract
interpreter's one-directional contract: an opaque callable or an
exhausted budget yields "don't know", and "don't know" never becomes a
diagnostic.
"""

from __future__ import annotations

import time
from collections.abc import Iterable, Mapping, Sequence
from itertools import product
from typing import Any

from repro.core.actions import Action
from repro.core.constraint_graph import GraphNode
from repro.core.constraints import Constraint, ConvergenceBinding
from repro.core.design import NonmaskingDesign
from repro.core.expr import Expr, V, _Const, _Not
from repro.core.fingerprint import PROBE_STATES, probe_states
from repro.core.introspect import callable_location, infer_predicate_reads
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.observability.events import (
    ABSINT_FINISH,
    ABSINT_TRANSFER,
    INTERFERENCE_FINISH,
    LINT_DIAGNOSTIC,
    LINT_FINISH,
    LINT_START,
)
from repro.staticcheck.absint import AbstractContext, eval_expr
from repro.staticcheck.absint import assume as absint_assume
from repro.staticcheck.diagnostics import Diagnostic, LintReport, diagnostic, ordered
from repro.staticcheck.infer import SupportTable, build_support_table
from repro.staticcheck.interference import (
    find_establish_failures,
    find_fault_hazards,
    find_order_conflicts,
    find_write_write_races,
    predicate_expr,
)

__all__ = ["lint_program", "lint_design", "lint_case", "lint_library"]

#: Cap on domain combinations enumerated per guard for ``GD001``.
GUARD_ENUM_LIMIT = 20_000


# ----------------------------------------------------------------------
# Program-level passes
# ----------------------------------------------------------------------


def _rw_diagnostics(table: SupportTable) -> list[Diagnostic]:
    """RW001/RW002/RW003 from a support table."""
    out: list[Diagnostic] = []
    for row in table.actions():
        if row.undeclared_reads:
            certainty = (
                "exactly (symbolic)"
                if row.inferred.exact
                else f"on {row.inferred.probes} probe states"
            )
            out.append(
                diagnostic(
                    "RW001",
                    f"reads {sorted(row.undeclared_reads)} {certainty} but "
                    f"declares only {sorted(row.declared_reads)}",
                    subject=row.name,
                    location=row.location,
                )
            )
        if row.undeclared_writes:
            out.append(
                diagnostic(
                    "RW002",
                    f"produces writes to {sorted(row.undeclared_writes)} not in "
                    f"its declared write set {sorted(row.declared_writes)}",
                    subject=row.name,
                    location=row.location,
                )
            )
        if row.over_declared_reads:
            out.append(
                diagnostic(
                    "RW003",
                    f"declares reads {sorted(row.over_declared_reads)} that its "
                    "symbolic guard and right-hand sides provably never consult",
                    subject=row.name,
                    location=row.location,
                )
            )
    for row in table.constraints():
        if row.undeclared_reads:
            out.append(
                diagnostic(
                    "RW001",
                    f"constraint predicate reads {sorted(row.undeclared_reads)} "
                    f"outside its declared support {sorted(row.declared_reads)}",
                    subject=row.name,
                    location=row.location,
                )
            )
    return out


def _guard_domain_sets(
    program: Program, variables: Iterable[str]
) -> list[tuple[str, list[Any]]] | None:
    """Finite per-variable value lists, or ``None`` when not enumerable."""
    sets: list[tuple[str, list[Any]]] = []
    combinations = 1
    for name in sorted(variables):
        variable = program.variables.get(name)
        if variable is None or not variable.domain.is_finite:
            return None
        values = list(variable.domain.values())
        combinations *= max(len(values), 1)
        if combinations > GUARD_ENUM_LIMIT:
            return None
        sets.append((name, values))
    return sets


def _gd_diagnostics(program: Program) -> list[Diagnostic]:
    """GD001: guards with no satisfying assignment over their local domains.

    Enumerates the product of the declared read variables' domains (the
    guard may consult at most those). Skips guards whose variables are
    not all finitely enumerable within :data:`GUARD_ENUM_LIMIT`
    combinations, and guards that raise during evaluation — both are
    undecidable here, and the linter never reports on uncertainty.
    """
    out: list[Diagnostic] = []
    for action in program.actions:
        sets = _guard_domain_sets(program, action.reads)
        if sets is None or not sets:
            continue
        names = [name for name, _values in sets]
        satisfiable = False
        undecidable = False
        for combo in product(*(values for _name, values in sets)):
            assignment: Mapping[str, Any] = dict(zip(names, combo))
            try:
                if action.guard(assignment):  # type: ignore[arg-type]
                    satisfiable = True
                    break
            except Exception:
                undecidable = True
                break
        if undecidable or satisfiable:
            continue
        out.append(
            diagnostic(
                "GD001",
                f"guard {action.guard.name!r} is false for every assignment of "
                f"{names} over their domains",
                subject=action.name,
                location=callable_location(action.guard),
            )
        )
    return out


def _vt_diagnostics(
    program: Program,
    table: SupportTable,
    extra_readers: Iterable[frozenset[str]],
) -> list[Diagnostic]:
    """VT001: variables no action (or supplied predicate) ever reads."""
    read: set[str] = set()
    for row in table.rows:
        read |= row.declared_reads | row.inferred.reads
    for support in extra_readers:
        read |= support
    out: list[Diagnostic] = []
    for name in program.variables:
        if name not in read:
            out.append(
                diagnostic(
                    "VT001",
                    "never read by any action, constraint, or the invariant",
                    subject=name,
                )
            )
    return out


def _predicate_reads(
    predicate: Predicate | None, states: Sequence[State]
) -> frozenset[str]:
    """The best-known read set of an optional predicate (for VT001)."""
    if predicate is None:
        return frozenset()
    inferred = infer_predicate_reads(predicate, states)
    declared = predicate.support if predicate.support is not None else frozenset()
    return inferred.reads | declared


def _program_diagnostics(
    program: Program,
    table: SupportTable,
    states: Sequence[State],
    invariant: Predicate | None,
    extra_readers: Iterable[frozenset[str]] = (),
) -> list[Diagnostic]:
    readers = [_predicate_reads(invariant, states), *extra_readers]
    return [
        *_rw_diagnostics(table),
        *_gd_diagnostics(program),
        *_vt_diagnostics(program, table, readers),
    ]


# ----------------------------------------------------------------------
# Semantic passes (abstract interpretation + interference)
# ----------------------------------------------------------------------


def _abstract_context(program: Program) -> AbstractContext:
    return AbstractContext(
        {name: variable.domain for name, variable in program.variables.items()}
    )


def _format_witness(witness: Mapping[str, Any]) -> str:
    return "{" + ", ".join(f"{k}={witness[k]!r}" for k in sorted(witness)) + "}"


def _absint_diagnostics(
    program: Program,
    invariant: Predicate | None,
    tracer=None,
    metrics=None,
) -> list[Diagnostic]:
    """DF001–DF004: per-action facts proved by the abstract interpreter.

    Each action's guard and right-hand sides are recovered symbolically
    where possible (opaque callables degrade to ⊤ — silence, never a
    finding):

    - **DF001** — the guard is unsatisfiable over the variable domains.
      Unlike ``GD001`` this is a symbolic proof (simplification,
      abstract evaluation, or a bounded case split over the guard's own
      variables), so it works where the product of the read domains is
      too large to enumerate.
    - **DF002** — some right-hand side's abstract value is disjoint from
      the written variable's domain: every execution would corrupt the
      state.
    - **DF003** — the guard holds in every state (or in every state
      satisfying the invariant): the condition is redundant inside S.
    - **DF004** — every assignment provably rewrites the value the
      variable already holds whenever the guard is true: a no-op.
    """
    context = _abstract_context(program)
    invariant_expr = predicate_expr(invariant)
    out: list[Diagnostic] = []
    for action in program.actions:
        before = len(out)
        guard_expr = predicate_expr(action.guard)
        location = callable_location(action.guard)
        dead = False
        if guard_expr is not None:
            proof = context.prove_unsat(guard_expr)
            if proof is not None:
                dead = True
                out.append(
                    diagnostic(
                        "DF001",
                        f"guard {action.guard.name!r} is provably false for "
                        f"every assignment of its variables "
                        f"({proof.rule}, {proof.cases} cases)",
                        subject=action.name,
                        location=location,
                    )
                )
            else:
                proof = context.prove_valid(guard_expr)
                if proof is None and invariant_expr is not None:
                    proof = context.prove_valid(
                        _Not(invariant_expr) | guard_expr
                    )
                if proof is not None:
                    out.append(
                        diagnostic(
                            "DF003",
                            f"guard {action.guard.name!r} is provably true "
                            f"in every (invariant) state "
                            f"({proof.rule}, {proof.cases} cases)",
                            subject=action.name,
                            location=location,
                        )
                    )
        # DF002: abstract post-values disjoint from the target domain.
        env = context.env
        if guard_expr is not None and not dead:
            env = absint_assume(guard_expr, env)
        for name in sorted(action.effect.updates):
            rhs = action.effect.updates[name]
            if isinstance(rhs, Expr):
                value = eval_expr(rhs, env)
            elif not callable(rhs):
                value = eval_expr(_Const(rhs), env)
            else:
                continue  # opaque: ⊤, nothing provable
            domain_value = context.domain_value(name)
            if not value.is_bottom and value.meet(domain_value).is_bottom:
                out.append(
                    diagnostic(
                        "DF002",
                        f"assigns {name!r} a value from {value} which is "
                        f"disjoint from its domain {domain_value}",
                        subject=action.name,
                        location=location,
                    )
                )
        # DF004: every (symbolic) assignment provably keeps the old value.
        if not dead and action.effect.updates:
            proofs = []
            for name, rhs in action.effect.updates.items():
                if callable(rhs) and not isinstance(rhs, Expr):
                    proofs = None
                    break
                rhs_expr = rhs if isinstance(rhs, Expr) else _Const(rhs)
                noop = V(name) == rhs_expr
                if guard_expr is not None:
                    noop = _Not(guard_expr) | noop
                proof = context.prove_valid(noop)
                if proof is None:
                    proofs = None
                    break
                proofs.append(proof)
            if proofs:
                cases = sum(proof.cases for proof in proofs)
                out.append(
                    diagnostic(
                        "DF004",
                        f"every assignment provably rewrites the current "
                        f"value whenever the guard holds ({cases} cases)",
                        subject=action.name,
                        location=location,
                    )
                )
        if tracer is not None:
            tracer.emit(
                ABSINT_TRANSFER,
                subject=action.name,
                symbolic_guard=guard_expr is not None,
                findings=len(out) - before,
            )
        if metrics is not None:
            metrics.counter("staticcheck.absint.transfers").add()
    if tracer is not None:
        tracer.emit(
            ABSINT_FINISH,
            subject=program.name,
            actions=len(program.actions),
            findings=len(out),
        )
    if metrics is not None:
        metrics.counter("staticcheck.absint.findings").add(len(out))
    return out


def _interference_diagnostics(
    design: NonmaskingDesign,
    faults: Sequence[Action] | None,
    tracer=None,
    metrics=None,
) -> list[Diagnostic]:
    """IF001–IF004: pairwise interference over inferred read/write sets.

    Race and conflict premises must be *certain* — a concrete witness
    state, a forced cycle, or containment of declared sets — before a
    finding is emitted; opaque guards and right-hand sides stay silent.
    """
    context = _abstract_context(design.program)
    out: list[Diagnostic] = []
    actions = list(design.program.actions)
    for first, second, name, witness in find_write_write_races(actions, context):
        out.append(
            diagnostic(
                "IF001",
                f"co-enabled with {second.name!r} (process "
                f"{second.process!r}) at {_format_witness(witness)}, both "
                f"writing {name!r} with provably different values",
                subject=first.name,
                location=callable_location(first.guard),
            )
        )
    for node_name, names in find_order_conflicts(design, context):
        out.append(
            diagnostic(
                "IF002",
                f"the convergence actions for {names} certainly break each "
                "other's constraints, so no Theorem 2 linear order exists "
                "at this node",
                subject=node_name,
            )
        )
    for binding, witness in find_establish_failures(design, context):
        out.append(
            diagnostic(
                "IF003",
                f"action {binding.action.name!r} is enabled at "
                f"{_format_witness(witness)} yet leaves "
                f"{binding.constraint.name!r} false",
                subject=binding.constraint.name,
                location=callable_location(binding.action.guard),
            )
        )
    for fault, binding, hazardous in find_fault_hazards(design, faults or ()):
        out.append(
            diagnostic(
                "IF004",
                f"fault {fault.name!r} writes {hazardous}, which the guard "
                f"of {binding.action.name!r} reads but constraint "
                f"{binding.constraint.name!r} does not observe",
                subject=binding.action.name,
                location=callable_location(binding.action.guard),
            )
        )
    if tracer is not None:
        tracer.emit(
            INTERFERENCE_FINISH,
            subject=design.name,
            actions=len(actions),
            findings=len(out),
        )
    if metrics is not None:
        metrics.counter("staticcheck.interference.findings").add(len(out))
    return out


# ----------------------------------------------------------------------
# Design-level passes (constraint graph + theorem preconditions)
# ----------------------------------------------------------------------


def _node_owner_map(
    nodes: Sequence[GraphNode],
) -> tuple[dict[str, GraphNode], list[Diagnostic]]:
    """CG001: build variable -> node ownership, reporting overlaps."""
    owner: dict[str, GraphNode] = {}
    out: list[Diagnostic] = []
    for node in nodes:
        for variable in sorted(node.variables):
            if variable in owner:
                out.append(
                    diagnostic(
                        "CG001",
                        f"variable {variable!r} appears in the labels of both "
                        f"{owner[variable].name!r} and {node.name!r}",
                        subject=node.name,
                    )
                )
            else:
                owner[variable] = node
    return owner, out


def _resolve_nodes(
    owner: Mapping[str, GraphNode], variables: frozenset[str]
) -> tuple[GraphNode | None, list[str], list[GraphNode]]:
    """Resolve a variable set to its owning node.

    Returns ``(unique owner or None, uncovered variables, distinct owners)``.
    """
    uncovered = sorted(v for v in variables if v not in owner)
    owners: list[GraphNode] = []
    for variable in sorted(variables):
        node = owner.get(variable)
        if node is not None and node not in owners:
            owners.append(node)
    unique = owners[0] if len(owners) == 1 and not uncovered else None
    return unique, uncovered, owners


def _edge_diagnostics(
    binding: ConvergenceBinding,
    owner: Mapping[str, GraphNode],
    states: Sequence[State],
) -> tuple[tuple[GraphNode, GraphNode] | None, list[Diagnostic]]:
    """CG002 for one binding; returns the resolved edge when well-formed."""
    action = binding.action
    constraint = binding.constraint
    location = callable_location(action.guard)
    out: list[Diagnostic] = []

    target, uncovered, owners = _resolve_nodes(owner, action.writes)
    if uncovered:
        out.append(
            diagnostic(
                "CG002",
                f"writes {uncovered} which no node label covers",
                subject=action.name,
                location=location,
            )
        )
    if len(owners) > 1:
        names = sorted(node.name for node in owners)
        out.append(
            diagnostic(
                "CG002",
                f"writes {sorted(action.writes)} span nodes {names}; an edge "
                "has exactly one target node",
                subject=action.name,
                location=location,
            )
        )
    if target is None:
        return None, out

    external = action.reads - target.variables
    source, uncovered, owners = _resolve_nodes(owner, frozenset(external))
    if uncovered:
        out.append(
            diagnostic(
                "CG002",
                f"reads {uncovered} which no node label covers",
                subject=action.name,
                location=location,
            )
        )
    if len(owners) > 1:
        names = sorted(node.name for node in owners)
        out.append(
            diagnostic(
                "CG002",
                f"reads {sorted(external)} outside its target node "
                f"{target.name!r} span nodes {names}; an edge has exactly one "
                "source node",
                subject=action.name,
                location=location,
            )
        )
    if source is None and external:
        return None, out
    if source is None:
        source = target

    edge_label = f"{source.name!r} -> {target.name!r}"
    allowed = source.variables | target.variables
    inferred = binding.inferred_support(states)
    escaped_reads = inferred.reads - allowed
    if escaped_reads:
        out.append(
            diagnostic(
                "CG002",
                f"on edge {edge_label} the binding reads "
                f"{sorted(escaped_reads)} outside the union of its nodes "
                f"(label {sorted(allowed)})",
                subject=action.name,
                location=location,
            )
        )
    escaped_writes = inferred.writes - target.variables
    if escaped_writes:
        out.append(
            diagnostic(
                "CG002",
                f"on edge {edge_label} the action writes "
                f"{sorted(escaped_writes)} outside its target node "
                f"{target.name!r} (label {sorted(target.variables)})",
                subject=action.name,
                location=location,
            )
        )
    escaped_support = constraint.support - allowed
    if escaped_support:
        out.append(
            diagnostic(
                "CG002",
                f"on edge {edge_label} the constraint reads "
                f"{sorted(escaped_support)} outside the union of its nodes "
                f"(label {sorted(allowed)})",
                subject=constraint.name,
                location=callable_location(constraint.predicate),
            )
        )
    return (source, target), out


def _has_proper_cycle(edges: Sequence[tuple[GraphNode, GraphNode]]) -> bool:
    """Kahn's algorithm over non-self-loop edges."""
    nodes = {node for edge in edges for node in edge}
    indegree = {node: 0 for node in nodes}
    successors: dict[GraphNode, list[GraphNode]] = {node: [] for node in nodes}
    for source, target in edges:
        if source == target:
            continue
        indegree[target] += 1
        successors[source].append(target)
    ready = [node for node in nodes if indegree[node] == 0]
    seen = 0
    while ready:
        node = ready.pop()
        seen += 1
        for nxt in successors[node]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                ready.append(nxt)
    return seen != len(nodes)


def _shape_diagnostics(
    design: NonmaskingDesign,
    edges: Sequence[tuple[GraphNode, GraphNode] | None],
    theorem: str,
) -> list[Diagnostic]:
    """CG003: a cyclic graph cannot go through Theorem 1 or 2."""
    if theorem == "3" and design.layers is None:
        return [
            diagnostic(
                "CG003",
                "Theorem 3 was requested but the design has no layer partition",
                subject=design.name,
                hint="pass layers= to NonmaskingDesign, partitioning the "
                "bindings into hierarchical layers",
            )
        ]
    # Unresolved (ill-formed) edges are dropped: a cycle among the edges
    # that did resolve is a real cycle no matter how the rest turn out.
    resolved = [edge for edge in edges if edge is not None]
    if not _has_proper_cycle(resolved):
        return []
    if theorem in ("1", "2") or (theorem == "auto" and design.layers is None):
        requested = f"Theorem {theorem}" if theorem in ("1", "2") else "Theorem 1/2"
        return [
            diagnostic(
                "CG003",
                f"the constraint graph has a cycle of length > 1 but "
                f"{requested} was requested",
                subject=design.name,
            )
        ]
    return []


def _theorem_diagnostics(
    bindings: Sequence[ConvergenceBinding], states: Sequence[State]
) -> list[Diagnostic]:
    """TH001: binding preconditions checked on the sampled battery.

    Both conditions are universally quantified over all states, so a
    failure on any genuine sampled state is a real counterexample. A
    binding that raises during the check is skipped (undecidable).
    """
    out: list[Diagnostic] = []
    for binding in bindings:
        location = callable_location(binding.action.guard)
        try:
            enabled_ok = binding.violated_implies_enabled(states)
        except Exception:
            enabled_ok = True
        if not enabled_ok:
            out.append(
                diagnostic(
                    "TH001",
                    f"constraint {binding.constraint.name!r} is violated at a "
                    f"sampled state where action {binding.action.name!r} is "
                    "not enabled",
                    subject=binding.constraint.name,
                    location=location,
                )
            )
        try:
            establishes_ok = binding.establishes_constraint(states)
        except Exception:
            establishes_ok = True
        if not establishes_ok:
            out.append(
                diagnostic(
                    "TH001",
                    f"action {binding.action.name!r} fires at a sampled state "
                    f"without establishing constraint "
                    f"{binding.constraint.name!r}",
                    subject=binding.constraint.name,
                    location=location,
                )
            )
    return out


def _cp_diagnostics(design: NonmaskingDesign) -> list[Diagnostic]:
    """CP001: bindings whose joint variable set defeats projection.

    The compositional certifier (:mod:`repro.compositional`) enumerates,
    per binding, the joint space of the action's reads/writes and the
    constraint's support. When a variable in that set has an infinite
    domain, or the product of the domain sizes exceeds
    :data:`~repro.compositional.DEFAULT_PROJECTION_LIMIT`, the certifier
    will refuse that obligation — worth knowing before verification.
    """
    from repro.compositional import DEFAULT_PROJECTION_LIMIT

    program = design.program
    out: list[Diagnostic] = []
    for binding in design.bindings:
        action = binding.action
        joint = action.reads | action.writes | binding.constraint.support
        combinations = 1
        blocker: str | None = None
        for name in sorted(joint):
            variable = program.variables.get(name)
            if variable is None:
                continue
            if not variable.domain.is_finite:
                blocker = f"variable {name!r} has an infinite domain"
                break
            combinations *= max(len(list(variable.domain.values())), 1)
            if combinations > DEFAULT_PROJECTION_LIMIT:
                blocker = (
                    f"the joint space of {sorted(joint)} exceeds "
                    f"{DEFAULT_PROJECTION_LIMIT} states"
                )
                break
        if blocker is not None:
            out.append(
                diagnostic(
                    "CP001",
                    f"binding for {binding.constraint.name!r} cannot be "
                    f"certified compositionally: {blocker}",
                    subject=action.name,
                    location=callable_location(action.guard),
                )
            )
    return out


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def _finish(
    subject: str,
    diagnostics: list[Diagnostic],
    probes: int,
    started: float,
    tracer,
    metrics,
) -> LintReport:
    report = LintReport(
        subject=subject,
        diagnostics=ordered(diagnostics),
        probes=probes,
        seconds=time.perf_counter() - started,
    )
    if tracer is not None:
        for d in report.diagnostics:
            tracer.emit(
                LINT_DIAGNOSTIC,
                subject=subject,
                code=d.code,
                severity=d.severity,
                about=d.subject,
                message=d.message,
            )
        tracer.emit(
            LINT_FINISH,
            subject=subject,
            diagnostics=len(report.diagnostics),
            errors=len(report.errors),
            warnings=len(report.warnings),
            seconds=report.seconds,
        )
    if metrics is not None:
        metrics.counter("lint.runs").add()
        metrics.counter("lint.diagnostics").add(len(report.diagnostics))
        metrics.counter("lint.errors").add(len(report.errors))
        metrics.counter("lint.warnings").add(len(report.warnings))
        metrics.timer("lint.seconds").record(report.seconds)
    return report


def lint_program(
    program: Program,
    *,
    invariant: Predicate | None = None,
    probes: int = PROBE_STATES,
    tracer=None,
    metrics=None,
    subject: str | None = None,
    semantic: bool = True,
) -> LintReport:
    """Lint one program: RW001/RW002/RW003, GD001, VT001, DF001–DF004.

    Args:
        program: The program to analyse.
        invariant: Optional invariant whose reads count for ``VT001`` (a
            variable only the invariant observes is not dead) and that
            contextualizes the ``DF003`` tautology check.
        probes: Size of the sampled-state battery for opaque callables.
        tracer: Optional :class:`~repro.observability.Tracer` receiving
            ``lint.*`` events.
        metrics: Optional :class:`~repro.observability.MetricsRegistry`.
        subject: Display name; defaults to the program name.
        semantic: Run the abstract-interpretation pass (``DF*``);
            ``False`` restricts to the probe-based passes.
    """
    started = time.perf_counter()
    name = subject if subject is not None else program.name
    if tracer is not None:
        tracer.emit(LINT_START, subject=name, probes=probes)
    states = probe_states(program, limit=probes)
    table = build_support_table(program, states=states)
    diagnostics = _program_diagnostics(program, table, states, invariant)
    if semantic:
        diagnostics.extend(
            _absint_diagnostics(program, invariant, tracer, metrics)
        )
    return _finish(name, diagnostics, len(states), started, tracer, metrics)


def lint_design(
    design: NonmaskingDesign,
    *,
    theorem: str = "auto",
    probes: int = PROBE_STATES,
    tracer=None,
    metrics=None,
    semantic: bool = True,
    faults: Sequence[Action] | None = None,
) -> LintReport:
    """Lint a full nonmasking design: program passes plus CG*/TH001.

    Works directly on the design's declared nodes and bindings rather
    than on :attr:`~repro.core.design.NonmaskingDesign.graph` — building
    that raises on the first violation, whereas the linter reports every
    violation with its exact variable sets.

    Args:
        design: The design to analyse.
        theorem: The theorem selector the design will be validated with
            (as in :meth:`NonmaskingDesign.validate`); drives ``CG003``.
        semantic: Run the abstract-interpretation (``DF*``) and
            interference (``IF*``) passes as well.
        faults: Optional declared fault actions; drives the ``IF004``
            fault-hazard check (declared write sets versus convergence
            guard supports).
    """
    started = time.perf_counter()
    program = design.program
    if tracer is not None:
        tracer.emit(LINT_START, subject=design.name, probes=probes)
    states = probe_states(program, limit=probes)
    constraints = [binding.constraint for binding in design.bindings]
    table = build_support_table(program, constraints, states=states)
    extra = [c.support for c in design.candidate.constraints]
    diagnostics = _program_diagnostics(
        program, table, states, design.candidate.invariant, extra
    )

    owner, overlap = _node_owner_map(design.nodes)
    diagnostics.extend(overlap)
    edges: list[tuple[GraphNode, GraphNode] | None] = []
    for binding in design.bindings:
        edge, found = _edge_diagnostics(binding, owner, states)
        edges.append(edge)
        diagnostics.extend(found)
    diagnostics.extend(_shape_diagnostics(design, edges, theorem))
    diagnostics.extend(_theorem_diagnostics(design.bindings, states))
    diagnostics.extend(_cp_diagnostics(design))
    if semantic:
        diagnostics.extend(
            _absint_diagnostics(
                program, design.candidate.invariant, tracer, metrics
            )
        )
        diagnostics.extend(
            _interference_diagnostics(design, faults, tracer, metrics)
        )
    return _finish(design.name, diagnostics, len(states), started, tracer, metrics)


def lint_case(
    name: str,
    size: int | None = None,
    *,
    probes: int = PROBE_STATES,
    tracer=None,
    metrics=None,
    semantic: bool = True,
) -> LintReport:
    """Lint one registered protocol-library case by name.

    Cases that register a design builder are linted as designs (all
    passes); the rest are linted as programs with their invariant.
    """
    from repro.protocols.library import CASES, build_case

    case = CASES.get(name)
    if case is None:
        from repro.core.errors import ValidationError

        known = ", ".join(CASES)
        raise ValidationError(
            f"unknown verification case {name!r}; known cases: {known}"
        )
    chosen = size if size is not None else case.default_size
    subject = f"{name} (n={chosen})"
    if case.build_design is not None:
        design = case.build_design(chosen)
        report = lint_design(
            design,
            probes=probes,
            tracer=tracer,
            metrics=metrics,
            semantic=semantic,
        )
        return LintReport(
            subject=subject,
            diagnostics=report.diagnostics,
            probes=report.probes,
            seconds=report.seconds,
        )
    program, invariant = build_case(name, chosen)
    return lint_program(
        program,
        invariant=invariant,
        probes=probes,
        tracer=tracer,
        metrics=metrics,
        subject=subject,
        semantic=semantic,
    )


def lint_library(
    *,
    names: Iterable[str] | None = None,
    sizes: Mapping[str, int] | None = None,
    probes: int = PROBE_STATES,
    tracer=None,
    metrics=None,
    semantic: bool = True,
) -> dict[str, LintReport]:
    """Lint the whole protocol library (or the named subset), by case."""
    from repro.protocols.library import case_names

    chosen = list(names) if names is not None else case_names()
    overrides = dict(sizes) if sizes is not None else {}
    return {
        name: lint_case(
            name,
            overrides.get(name),
            probes=probes,
            tracer=tracer,
            metrics=metrics,
            semantic=semantic,
        )
        for name in chosen
    }
