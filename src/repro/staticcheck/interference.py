"""Pairwise action interference analysis and static obligation discharge.

Two consumers share this module:

- The **lint passes** (``IF001``–``IF004``): a race/interference
  detector over the inferred read/write sets plus abstract guard
  conditions — write-write races between processes, Theorem 2
  linear-order conflicts, convergence actions that provably fail to
  establish their constraint, and fault writes reaching a convergence
  guard's support.
- The **compositional certifier**: a :class:`StaticDischarger` that
  proves individual theorem antecedents (closure preservation,
  enabled-when-violated, establishes-in-one-step, merged behaviour,
  linear-order pairs) without enumerating any projected state space.
  Each success is exported as a :class:`StaticCertificate`;
  :func:`repro.compositional.certify_compositional` consumes it as a
  fast path and skips the projected sweep for that obligation.

Soundness contract (same bar as the rest of :mod:`repro.staticcheck`):
a certificate is only issued when the abstract proof is *definite*, and
a diagnostic is only emitted on a *concrete witness* or a premise
certain from declared sets. Abstract "don't know" — an opaque callable,
an over-budget case split — degrades to ``None``: the certifier falls
back to its enumerative sweep and the linter stays quiet. A negative
verdict is never produced statically.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass, replace
from typing import Any

from repro.core.actions import Action
from repro.core.constraints import Constraint, ConvergenceBinding
from repro.core.design import NonmaskingDesign
from repro.core.expr import BoolExpr, Expr, _Const, _Not
from repro.core.predicates import Predicate
from repro.observability import MetricsRegistry, Tracer
from repro.observability.events import INTERFERENCE_DISCHARGED
from repro.staticcheck.absint import (
    DEFAULT_CASE_BUDGET,
    AbstractContext,
    _canonical_tokens,
    exprs_equal,
    substitute,
)

__all__ = [
    "StaticCertificate",
    "StaticDischarger",
    "predicate_expr",
    "update_exprs",
    "find_write_write_races",
    "find_order_conflicts",
    "find_establish_failures",
    "find_fault_hazards",
]


def predicate_expr(predicate: Predicate | None) -> BoolExpr | None:
    """Recover a symbolic expression for a predicate, if one exists.

    Uses the ``source`` expression recorded by
    :meth:`~repro.core.expr.BoolExpr.predicate`, and rebuilds combinator
    structure (``~p``, ``p & q``, ``all_of`` …) from ``parts``. Returns
    ``None`` for opaque predicates — the caller must degrade to ⊤.
    """
    if predicate is None:
        return None
    source = getattr(predicate, "source", None)
    if isinstance(source, BoolExpr):
        return source
    parts = getattr(predicate, "parts", None)
    if not parts:
        return None
    tag = parts[0]
    if tag == "not":
        inner = predicate_expr(parts[1][0])
        return None if inner is None else _Not(inner)
    if tag in ("and", "or", "implies"):
        left = predicate_expr(parts[1][0])
        right = predicate_expr(parts[1][1])
        if left is None or right is None:
            return None
        if tag == "and":
            return left & right
        if tag == "or":
            return left | right
        return _Not(left) | right
    if tag in ("all", "any"):
        lowered = [predicate_expr(p) for p in parts[1]]
        if not lowered or any(item is None for item in lowered):
            return None
        out = lowered[0]
        for item in lowered[1:]:
            assert out is not None and item is not None
            out = (out & item) if tag == "all" else (out | item)
        return out
    return None  # "count" and unknown combinators stay opaque


def update_exprs(
    action: Action, needed: Iterable[str]
) -> dict[str, Expr] | None:
    """Symbolic right-hand sides for the written variables in ``needed``.

    Variables written by the action but irrelevant to the target
    expression are skipped. Returns ``None`` when any needed right-hand
    side is an opaque callable (sound degradation).
    """
    wanted = frozenset(needed)
    out: dict[str, Expr] = {}
    for name, rhs in action.effect.updates.items():
        if name not in wanted:
            continue
        if isinstance(rhs, Expr):
            out[name] = rhs
        elif not callable(rhs):
            out[name] = _Const(rhs)
        else:
            return None
    return out


def _conjoin(exprs: Sequence[BoolExpr]) -> BoolExpr:
    out = exprs[0]
    for item in exprs[1:]:
        out = out & item
    return out


def guard_negates(guard: Predicate, constraint: Constraint) -> bool:
    """Whether the guard is structurally ``not c`` for the constraint.

    True by object identity (``~c.predicate`` kept through ``renamed``)
    or by structural equality of the source expressions. ``False`` means
    *not recognised*, never *semantically different*.
    """
    parts = getattr(guard, "parts", None)
    if parts and parts[0] == "not":
        inner = parts[1][0]
        if inner is constraint.predicate:
            return True
        inner_expr = predicate_expr(inner)
        constraint_expr = predicate_expr(constraint.predicate)
        if (
            inner_expr is not None
            and constraint_expr is not None
            and exprs_equal(inner_expr, constraint_expr)
        ):
            return True
    guard_expr = predicate_expr(guard)
    constraint_expr = predicate_expr(constraint.predicate)
    if (
        isinstance(guard_expr, _Not)
        and constraint_expr is not None
        and exprs_equal(guard_expr.inner, constraint_expr)
    ):
        return True
    return False


@dataclass(frozen=True)
class StaticCertificate:
    """Evidence that one theorem antecedent was discharged statically.

    Attributes:
        obligation: The antecedent name, matching the compositional
            certificate's vocabulary (``"closure-preserves"``,
            ``"enabled-when-violated"``, ``"establishes-in-one-step"``,
            ``"merged-behaviour"``, ``"linear-order"``).
        subject: The (action, constraint) pair the obligation is about.
        rule: Which static route succeeded — ``"negation-guard"``,
            ``"post-<proof rule>"``, ``"vacuous-<proof rule>"``, or
            ``"implication-<proof rule>"``.
        cases: Truth-table rows evaluated by the bounded case split
            (0 for the purely structural/abstract routes). Always a
            function of the formula, never of the protocol size.
        detail: Human-readable one-liner of what was proved.
    """

    obligation: str
    subject: str
    rule: str
    cases: int
    detail: str = ""

    def as_dict(self) -> dict[str, Any]:
        return {
            "obligation": self.obligation,
            "subject": self.subject,
            "rule": self.rule,
            "cases": self.cases,
            "detail": self.detail,
        }


class StaticDischarger:
    """Proves theorem antecedents of one design without enumeration.

    One instance per certification run; it owns the design's
    :class:`~repro.staticcheck.absint.AbstractContext` and the
    observability hooks. All ``None`` returns mean *don't know* — the
    caller must fall back to the enumerative sweep.

    Discharge outcomes are memoized in a process-wide proof cache: the
    per-edge obligations of a protocol repeat the same formulas up to
    variable renaming (c.1/c.2, c.2/c.3, ...) — within one design,
    across sizes of the same family, and across certification runs —
    so one proof, or one definite failure to prove, serves them all.
    Keys canonicalize the obligation's expressions under a joint
    renaming plus the exact value sets of the involved variables and
    the case budget, which makes them self-contained: equal keys imply
    equal formulas and domains, hence equal outcomes, independent of
    which design asked. Anything opaque or inexactly abstracted is
    simply not memoized.
    """

    #: Shared across instances; see the class docstring. Bounded so a
    #: pathological stream of distinct obligations cannot grow it
    #: without limit — once full, new outcomes are computed but not
    #: stored.
    _MEMO_CAP = 16384
    _memo: dict[tuple[Any, ...], "StaticCertificate | None"] = {}

    #: The id-keyed caches store their subject object alongside the
    #: result so a recycled id can never alias a dead object. They are
    #: class-level for the same reason as the proof memo: the library
    #: shares design instances across certification runs (the builders
    #: are memoized), so a later run's obligations present the *same*
    #: expression and predicate objects. Capped like the memo; the
    #: stored references are bounded by the caps, not by how many
    #: designs the process ever certifies.
    _pred_cache: dict[int, tuple[Any, "BoolExpr | None"]] = {}
    _token_cache: dict[int, tuple[Any, str | None, tuple[str, ...]]] = {}
    _pair_keys: dict[
        tuple[Any, ...], tuple[tuple[Any, ...], tuple[Any, ...] | None]
    ] = {}

    def __init__(
        self,
        design: NonmaskingDesign,
        *,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        budget: int = DEFAULT_CASE_BUDGET,
    ) -> None:
        self._context = AbstractContext(
            {
                name: variable.domain
                for name, variable in design.program.variables.items()
            }
        )
        self._tracer = tracer
        self._metrics = metrics
        self._budget = budget
        self.attempts = 0
        self.discharged = 0
        self._env_snapshot = self._context.env

    @property
    def context(self) -> AbstractContext:
        return self._context

    # -- internals -----------------------------------------------------
    def _emit(self, certificate: StaticCertificate) -> StaticCertificate:
        self.discharged += 1
        if self._metrics is not None:
            self._metrics.counter("staticcheck.interference.discharged").add()
        if self._tracer is not None:
            self._tracer.emit(
                INTERFERENCE_DISCHARGED,
                obligation=certificate.obligation,
                subject=certificate.subject,
                rule=certificate.rule,
                cases=certificate.cases,
            )
        return certificate

    def _count_attempt(self) -> None:
        self.attempts += 1
        if self._metrics is not None:
            self._metrics.counter("staticcheck.interference.attempts").add()

    def _predicate_expr(self, predicate: Predicate | None) -> BoolExpr | None:
        """Memoized :func:`predicate_expr` — combinator predicates
        rebuild fresh expression objects on every call, which would also
        defeat the id-keyed token cache below."""
        if predicate is None:
            return None
        entry = self._pred_cache.get(id(predicate))
        if entry is None or entry[0] is not predicate:
            entry = (predicate, predicate_expr(predicate))
            if len(self._pred_cache) < self._MEMO_CAP:
                self._pred_cache[id(predicate)] = entry
        return entry[1]

    def _component_key(
        self, expr: Expr, joint: dict[str, int]
    ) -> tuple[str, tuple[int, ...]] | None:
        """One expression's contribution to an obligation key.

        The pair (local canonical tokens, joint indices of its variables
        in first-use order) determines the expression under the
        obligation's joint renaming, so per-expression tokens can be
        cached independently of which obligation they appear in.
        """
        entry = self._token_cache.get(id(expr))
        if entry is None or entry[0] is not expr:
            names: dict[str, int] = {}
            tokens = _canonical_tokens(expr, names)
            entry = (expr, tokens, tuple(names))
            if len(self._token_cache) < self._MEMO_CAP:
                self._token_cache[id(expr)] = entry
        _, tokens, names = entry
        if tokens is None:
            return None
        return tokens, tuple(
            joint.setdefault(name, len(joint)) for name in names
        )

    def _obligation_key(
        self,
        kind: str,
        exprs: Sequence[BoolExpr | None],
        updates: Mapping[str, Expr] | None,
    ) -> tuple[Any, ...] | None:
        """A renaming-invariant memo key, or ``None`` when not safe.

        Memoization requires every involved expression to be
        tokenizable and every involved variable's abstraction to be an
        exact finite value set — equal keys then imply the same premise
        formulas, post-states, and proof-search outcomes. ``None``
        (don't memoize) is the answer for opaque guards or updates: two
        different opaque callables would collide on the same key.
        """
        joint: dict[str, int] = {}
        parts: list[Any] = [kind]
        for expr in exprs:
            if expr is None:
                return None
            component = self._component_key(expr, joint)
            if component is None:
                return None
            parts.append(component)
        if updates is not None:
            rows: list[Any] = []
            for name in sorted(updates):
                component = self._component_key(updates[name], joint)
                if component is None:
                    return None
                rows.append((joint.setdefault(name, len(joint)), component))
            parts.append(tuple(rows))
        values = []
        for name in joint:  # insertion order == joint index order
            abstract = self._env_snapshot.get(name)
            if abstract is None or abstract.values is None:
                return None
            values.append(abstract.values)
        parts.append(tuple(values))
        parts.append(self._budget)
        return tuple(parts)

    def _pair_cached_key(
        self,
        tag: str,
        objects: tuple[Any, ...],
        compute_key: Any,
    ) -> tuple[Any, ...] | None:
        """Obligation key for a tuple of design objects, computed once.

        A second-level cache over :meth:`_obligation_key`: the same
        (action, constraint) pair always canonicalizes to the same key,
        so repeat visits cost one dict lookup instead of a tree walk.
        The stored object tuple guards against id reuse.
        """
        pair = (tag, self._budget, *[id(obj) for obj in objects])
        entry = self._pair_keys.get(pair)
        if entry is not None and all(
            a is b for a, b in zip(entry[0], objects)
        ):
            return entry[1]
        key = compute_key()
        if len(self._pair_keys) < self._MEMO_CAP:
            self._pair_keys[pair] = (objects, key)
        return key

    def _memoized(
        self,
        key: tuple[Any, ...] | None,
        prove: Any,
        *,
        obligation: str,
        subject: str,
    ) -> StaticCertificate | None:
        """Run ``prove`` through the memo; emit on every discharge."""
        if key is not None and key in self._memo:
            cached = self._memo[key]
            if cached is None:
                return None
            if cached.obligation == obligation and cached.subject == subject:
                return self._emit(cached)
            return self._emit(
                replace(cached, obligation=obligation, subject=subject)
            )
        certificate = prove()
        if key is not None and len(self._memo) < self._MEMO_CAP:
            self._memo[key] = certificate
        if certificate is None:
            return None
        return self._emit(certificate)

    def _preserves(
        self,
        action: Action,
        target: Constraint,
        *,
        obligation: str,
        subject: str,
        given: Constraint | None = None,
    ) -> StaticCertificate | None:
        """``enabled ∧ (given) ∧ target  ⇒  target after the action``."""
        self._count_attempt()

        # The proof never consults the obligation name, so renamed
        # twins of a linear-order obligation can reuse a
        # closure-preserves proof; only guard/given/target/updates key.
        def compute_key():
            guard_expr = self._predicate_expr(action.guard)
            target_expr = self._predicate_expr(target.predicate)
            given_expr = (
                self._predicate_expr(given.predicate)
                if given is not None
                else None
            )
            return self._obligation_key(
                "preserves",
                [guard_expr, target_expr]
                + ([given_expr] if given is not None else []),
                update_exprs(action, target.support),
            )

        def prove():
            return self._prove_preserves(
                self._predicate_expr(action.guard),
                self._predicate_expr(given.predicate)
                if given is not None
                else None,
                self._predicate_expr(target.predicate),
                update_exprs(action, target.support),
                obligation=obligation,
                subject=subject,
            )

        key = self._pair_cached_key(
            "preserves", (action, target, given), compute_key
        )
        return self._memoized(
            key, prove, obligation=obligation, subject=subject
        )

    def _prove_preserves(
        self,
        guard_expr: BoolExpr | None,
        given_expr: BoolExpr | None,
        target_expr: BoolExpr | None,
        updates: Mapping[str, Expr] | None,
        *,
        obligation: str,
        subject: str,
    ) -> StaticCertificate | None:
        post: Expr | None = None
        if target_expr is not None and updates is not None:
            post = substitute(target_expr, updates)
        premises = [
            expr
            for expr in (guard_expr, given_expr, target_expr)
            if expr is not None
        ]

        # 1. The post-state constraint is valid outright (reflexivity
        #    after a copy-style update, constant folding, …) by
        #    structure or abstract bounds alone — no truth-table rows.
        #    Proving it without the premises is a stronger statement.
        if post is not None:
            proof = self._context.prove_valid(post, budget=0)
            if proof is not None:
                return StaticCertificate(
                    obligation=obligation,
                    subject=subject,
                    rule=f"post-{proof.rule}",
                    cases=proof.cases,
                    detail="the substituted post-state constraint is "
                    "valid for every assignment",
                )

        # 2. The available premises are jointly unsatisfiable (e.g. the
        #    guard is ¬c while the given constraint is c), again without
        #    rows. Unsat of a premise subset implies unsat of the full
        #    premise — sound, and it needs no post-state, so opaque
        #    updates still allow it.
        if premises:
            proof = self._context.prove_unsat(_conjoin(premises), budget=0)
            if proof is not None:
                return StaticCertificate(
                    obligation=obligation,
                    subject=subject,
                    rule=f"vacuous-{proof.rule}",
                    cases=proof.cases,
                    detail="the obligation's premises are jointly "
                    "unsatisfiable",
                )

        # 3. The full implication, by bounded case split over the
        #    formula's variables. A valid post-state and unsatisfiable
        #    premises each imply the implication, so when its truth
        #    table is affordable this single split decides everything
        #    routes 1-2 could — paying for one split, not three.
        if post is not None and premises and isinstance(post, BoolExpr):
            implication = _Not(_conjoin(premises)) | post
            proof = self._context.prove_valid(implication, budget=self._budget)
            if proof is not None:
                return StaticCertificate(
                    obligation=obligation,
                    subject=subject,
                    rule=f"implication-{proof.rule}",
                    cases=proof.cases,
                    detail="premises imply the substituted post-state "
                    "constraint",
                )

        # 4. The implication's table ranges over the union of the
        #    variables and may be unaffordable while the smaller post or
        #    premise tables are not — retry those with rows allowed.
        if post is not None:
            proof = self._context.prove_valid(post, budget=self._budget)
            if proof is not None:
                return StaticCertificate(
                    obligation=obligation,
                    subject=subject,
                    rule=f"post-{proof.rule}",
                    cases=proof.cases,
                    detail="the substituted post-state constraint is "
                    "valid for every assignment",
                )
        if premises:
            proof = self._context.prove_unsat(
                _conjoin(premises), budget=self._budget
            )
            if proof is not None:
                return StaticCertificate(
                    obligation=obligation,
                    subject=subject,
                    rule=f"vacuous-{proof.rule}",
                    cases=proof.cases,
                    detail="the obligation's premises are jointly "
                    "unsatisfiable",
                )
        return None

    # -- public discharge routes ---------------------------------------
    def closure_preserves(
        self, action: Action, constraint: Constraint, subject: str
    ) -> StaticCertificate | None:
        return self._preserves(
            action, constraint, obligation="closure-preserves", subject=subject
        )

    def order_preserves(
        self, action: Action, constraint: Constraint, subject: str
    ) -> StaticCertificate | None:
        return self._preserves(
            action, constraint, obligation="linear-order", subject=subject
        )

    def merged_behaviour(
        self, binding: ConvergenceBinding, other: Constraint, subject: str
    ) -> StaticCertificate | None:
        return self._preserves(
            binding.action,
            other,
            obligation="merged-behaviour",
            subject=subject,
            given=binding.constraint,
        )

    def enabled_when_violated(
        self, binding: ConvergenceBinding, subject: str
    ) -> StaticCertificate | None:
        """``not c ⇒ action enabled``, i.e. ``c ∨ guard`` is valid."""
        self._count_attempt()

        def compute_key():
            return self._obligation_key(
                "enabled-when-violated",
                [
                    self._predicate_expr(binding.action.guard),
                    self._predicate_expr(binding.constraint.predicate),
                ],
                None,
            )

        def prove():
            return self._prove_enabled_when_violated(
                binding,
                self._predicate_expr(binding.action.guard),
                self._predicate_expr(binding.constraint.predicate),
                subject,
            )

        key = self._pair_cached_key(
            "enabled-when-violated",
            (binding.action, binding.constraint),
            compute_key,
        )
        return self._memoized(
            key, prove, obligation="enabled-when-violated", subject=subject
        )

    def _prove_enabled_when_violated(
        self,
        binding: ConvergenceBinding,
        guard_expr: BoolExpr | None,
        constraint_expr: BoolExpr | None,
        subject: str,
    ) -> StaticCertificate | None:
        if guard_negates(binding.action.guard, binding.constraint):
            return StaticCertificate(
                obligation="enabled-when-violated",
                subject=subject,
                rule="negation-guard",
                cases=0,
                detail="the guard is structurally the negation of the "
                "constraint",
            )
        if constraint_expr is None or guard_expr is None:
            return None
        proof = self._context.prove_valid(
            constraint_expr | guard_expr, budget=self._budget
        )
        if proof is None:
            return None
        return StaticCertificate(
            obligation="enabled-when-violated",
            subject=subject,
            rule=f"tautology-{proof.rule}",
            cases=proof.cases,
            detail="constraint-or-guard is valid for every assignment",
        )

    def establishes(
        self, binding: ConvergenceBinding, subject: str
    ) -> StaticCertificate | None:
        """``enabled ⇒ c after the action``."""
        self._count_attempt()
        own = binding.constraint
        action = binding.action

        # A None guard keys to None (no memo) — route 1 could still
        # prove, but the outcome then isn't determined by these parts.
        def compute_key():
            updates = update_exprs(action, own.support)
            if updates is None:
                return None
            return self._obligation_key(
                "establishes",
                [
                    self._predicate_expr(own.predicate),
                    self._predicate_expr(action.guard),
                ],
                updates,
            )

        def prove():
            own_expr = self._predicate_expr(own.predicate)
            if own_expr is None:
                return None
            updates = update_exprs(action, own.support)
            if updates is None:
                return None
            return self._prove_establishes(
                own_expr,
                self._predicate_expr(action.guard),
                updates,
                subject,
            )

        key = self._pair_cached_key(
            "establishes", (action, own), compute_key
        )
        return self._memoized(
            key, prove, obligation="establishes-in-one-step", subject=subject
        )

    def _prove_establishes(
        self,
        own_expr: BoolExpr,
        guard_expr: BoolExpr | None,
        updates: Mapping[str, Expr],
        subject: str,
    ) -> StaticCertificate | None:
        post = substitute(own_expr, updates)
        if post is None:
            return None
        proof = self._context.prove_valid(post, budget=self._budget)
        if proof is not None:
            return StaticCertificate(
                obligation="establishes-in-one-step",
                subject=subject,
                rule=f"post-{proof.rule}",
                cases=proof.cases,
                detail="the substituted constraint is valid regardless "
                "of the guard",
            )
        if guard_expr is not None and isinstance(post, BoolExpr):
            proof = self._context.prove_valid(
                _Not(guard_expr) | post, budget=self._budget
            )
            if proof is not None:
                return StaticCertificate(
                    obligation="establishes-in-one-step",
                    subject=subject,
                    rule=f"implication-{proof.rule}",
                    cases=proof.cases,
                    detail="the guard implies the substituted constraint",
                )
        return None


# ----------------------------------------------------------------------
# Interference findings for the lint passes (IF001–IF004)
# ----------------------------------------------------------------------


def _joint_guard_and(
    context: AbstractContext,
    exprs: Sequence[BoolExpr],
    budget: int,
) -> dict[str, Any] | None:
    return context.find_witness(_conjoin(exprs), budget=budget)


def find_write_write_races(
    actions: Sequence[Action],
    context: AbstractContext,
    *,
    budget: int = DEFAULT_CASE_BUDGET,
) -> list[tuple[Action, Action, str, dict[str, Any]]]:
    """IF001: co-enabled actions of different processes, same variable,
    provably different values — with a concrete witness state.

    Only pairs whose guards and the contested right-hand sides are all
    symbolic can produce a finding; anything opaque stays silent.
    """
    out: list[tuple[Action, Action, str, dict[str, Any]]] = []
    for index, first in enumerate(actions):
        if first.process is None:
            continue
        for second in actions[index + 1:]:
            if second.process is None or second.process == first.process:
                continue
            shared = first.writes & second.writes
            if not shared:
                continue
            first_guard = predicate_expr(first.guard)
            second_guard = predicate_expr(second.guard)
            if first_guard is None or second_guard is None:
                continue
            for name in sorted(shared):
                first_rhs = update_exprs(first, {name})
                second_rhs = update_exprs(second, {name})
                if not first_rhs or not second_rhs:
                    continue
                differs = first_rhs[name] != second_rhs[name]
                witness = _joint_guard_and(
                    context, [first_guard, second_guard, differs], budget
                )
                if witness is not None:
                    out.append((first, second, name, witness))
                    break  # one finding per action pair
    return out


def _breaks_witness(
    action: Action,
    constraint: Constraint,
    context: AbstractContext,
    budget: int,
) -> dict[str, Any] | None:
    """A state where ``action`` fires with ``constraint`` holding and
    falsifies it — certain evidence of interference."""
    constraint_expr = predicate_expr(constraint.predicate)
    guard_expr = predicate_expr(action.guard)
    if constraint_expr is None or guard_expr is None:
        return None
    updates = update_exprs(action, constraint.support)
    if updates is None:
        return None
    post = substitute(constraint_expr, updates)
    if not isinstance(post, BoolExpr):
        return None
    return context.find_witness(
        guard_expr & constraint_expr & _Not(post), budget=budget
    )


def find_order_conflicts(
    design: NonmaskingDesign,
    context: AbstractContext,
    *,
    budget: int = DEFAULT_CASE_BUDGET,
) -> list[tuple[str, list[str]]]:
    """IF002: nodes where certain pairwise breaks admit no linear order.

    For each declared node with several incoming convergence actions
    (grouped by which node owns the action's writes — the edge-target
    rule of Section 4), Theorem 2 needs a linear order in which every
    action preserves its predecessors' constraints. A *certain* break
    (concrete witness) of constraint ``c`` by action ``a`` forces
    ``c``'s binding after ``a``'s; a cycle of such forcings means no
    order exists. Returns ``(node name, involved constraint names)``
    per conflict. Works from the declared node labels directly, so it
    reports even on designs whose graph construction would raise on an
    unrelated violation.
    """
    owner: dict[str, str] = {}
    for node in design.nodes:
        for variable in node.variables:
            owner.setdefault(variable, node.name)
    grouped: dict[str, list[ConvergenceBinding]] = {}
    for binding in design.bindings:
        targets = {owner.get(name) for name in binding.action.writes}
        if len(targets) != 1 or None in targets:
            continue  # ill-targeted edges are CG002's problem
        grouped.setdefault(next(iter(targets)), []).append(binding)
    out: list[tuple[str, list[str]]] = []
    for node_name in sorted(grouped):
        incoming = grouped[node_name]
        if len(incoming) <= 1:
            continue
        must_follow: dict[int, set[int]] = {
            i: set() for i in range(len(incoming))
        }
        for i, earlier in enumerate(incoming):
            for j, later in enumerate(incoming):
                if i == j:
                    continue
                witness = _breaks_witness(
                    earlier.action, later.constraint, context, budget
                )
                if witness is not None:
                    # earlier's action falsifies later's constraint, so
                    # later's binding must come after earlier's.
                    must_follow[j].add(i)
        if _has_cycle(must_follow):
            names = sorted(b.constraint.name for b in incoming)
            out.append((node_name, names))
    return out


def _has_cycle(edges: Mapping[int, set[int]]) -> bool:
    state: dict[int, int] = {}  # 0 = visiting, 1 = done

    def visit(node: int) -> bool:
        mark = state.get(node)
        if mark == 0:
            return True
        if mark == 1:
            return False
        state[node] = 0
        for prev in edges.get(node, ()):
            if visit(prev):
                return True
        state[node] = 1
        return False

    return any(visit(node) for node in edges)


def find_establish_failures(
    design: NonmaskingDesign,
    context: AbstractContext,
    *,
    budget: int = DEFAULT_CASE_BUDGET,
) -> list[tuple[ConvergenceBinding, dict[str, Any]]]:
    """IF003: convergence actions with a concrete state where they fire
    without establishing their constraint."""
    out: list[tuple[ConvergenceBinding, dict[str, Any]]] = []
    for binding in design.bindings:
        own_expr = predicate_expr(binding.constraint.predicate)
        guard_expr = predicate_expr(binding.action.guard)
        if own_expr is None or guard_expr is None:
            continue
        updates = update_exprs(binding.action, binding.constraint.support)
        if updates is None:
            continue
        post = substitute(own_expr, updates)
        if not isinstance(post, BoolExpr):
            continue
        witness = context.find_witness(
            guard_expr & _Not(post), budget=budget
        )
        if witness is not None:
            out.append((binding, witness))
    return out


def find_fault_hazards(
    design: NonmaskingDesign,
    faults: Sequence[Action],
) -> list[tuple[Action, ConvergenceBinding, list[str]]]:
    """IF004: fault writes reaching a convergence guard's support.

    A fault that writes a variable the convergence guard consults but
    the constraint does not observe can toggle the action's enabledness
    without violating (or repairing) the constraint — the convergence
    reasoning of Section 3 no longer sees the perturbation. The premise
    is certain from the declared sets alone.
    """
    out: list[tuple[Action, ConvergenceBinding, list[str]]] = []
    for fault in faults:
        for binding in design.bindings:
            guard_support = binding.action.guard.support
            if guard_support is None:
                guard_support = binding.action.reads
            hazardous = sorted(
                (fault.writes & guard_support) - binding.constraint.support
            )
            if hazardous:
                out.append((fault, binding, hazardous))
    return out
