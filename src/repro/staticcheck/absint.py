"""Abstract interpretation over the expression DSL.

The paper's side conditions (closure preservation, convergence in one
step, interference freedom — Sections 3 and 4) are implications between
guards, constraints, and post-states. The compositional certifier
discharges them by sweeping projected state spaces; this module proves
many of them *without any enumeration*, by evaluating the expressions
over abstract values instead of concrete states.

The abstract domain is a reduced product of three classic components,
keyed to the concrete :mod:`repro.core.domains`:

- **constant / finite-set**: the set of values a variable may hold,
  tracked exactly while small (:data:`VALUE_LIMIT`), dropped to the
  coarser components beyond that;
- **interval**: integer lower/upper bounds;
- **parity**: an even/odd bitmask for integer values.

Boolean questions are answered in three-valued logic — ``True``
(certainly holds in every concrete instance), ``False`` (certainly
fails), or ``None`` (don't know). Soundness is one-directional by
design: *don't know* never becomes a definite verdict, so a diagnostic
or a discharged obligation built on these answers is trustworthy, while
an opaque callable (no ``source`` expression) simply degrades to ⊤ and
leaves the obligation to the enumerative sweep.

Proof obligations that resist purely abstract evaluation fall back to a
*bounded case split*: a truth table over the free variables of the
expression itself (never the program's state space), capped at
:data:`DEFAULT_CASE_BUDGET` rows. This is the static analyzer's notion
of "zero enumeration" — the cost is a function of the formula, not of
the protocol size.
"""

from __future__ import annotations

import itertools
from collections.abc import Mapping
from dataclasses import dataclass
from typing import Any

from repro.core.domains import Domain, FiniteDomain, IntegerDomain
from repro.core.expr import (
    BoolExpr,
    Expr,
    _Binary,
    _Const,
    _Fold,
    _Ite,
    _Not,
    _Var,
)

__all__ = [
    "VALUE_LIMIT",
    "DEFAULT_CASE_BUDGET",
    "AbstractValue",
    "TOP",
    "BOTTOM",
    "Proof",
    "AbstractContext",
    "eval_expr",
    "eval_bool",
    "assume",
    "substitute",
    "simplify",
    "exprs_equal",
]

#: Largest finite value set tracked exactly; larger sets collapse to the
#: interval/parity components.
VALUE_LIMIT = 64

#: Default cap on truth-table rows for the bounded case split.
DEFAULT_CASE_BUDGET = 32

_PARITY_EVEN = 1
_PARITY_ODD = 2
_PARITY_TOP = _PARITY_EVEN | _PARITY_ODD


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _parity_of(value: int) -> int:
    return _PARITY_EVEN if value % 2 == 0 else _PARITY_ODD


@dataclass(frozen=True)
class AbstractValue:
    """One point of the reduced product lattice.

    Attributes:
        values: The finite set of possible values, or ``None`` when no
            finite enumeration (of size ≤ :data:`VALUE_LIMIT`) is known.
        lo: Integer lower bound, or ``None`` when unbounded/non-integer.
        hi: Integer upper bound, or ``None`` when unbounded/non-integer.
        parity: Bitmask of possible integer parities (1 = even may
            occur, 2 = odd may occur). ``3`` when unknown or when the
            value may be non-integer.
    """

    values: frozenset[Any] | None
    lo: int | None = None
    hi: int | None = None
    parity: int = _PARITY_TOP

    # -- constructors --------------------------------------------------
    @staticmethod
    def top() -> "AbstractValue":
        return TOP

    @staticmethod
    def bottom() -> "AbstractValue":
        return BOTTOM

    @staticmethod
    def of(*values: Any) -> "AbstractValue":
        """The abstraction of an explicit finite set of values."""
        return AbstractValue._from_set(frozenset(values))

    @staticmethod
    def _from_set(values: frozenset[Any]) -> "AbstractValue":
        if not values:
            return BOTTOM
        ints = [v for v in values if _is_int(v)]
        lo = min(ints) if ints and len(ints) == len(values) else None
        hi = max(ints) if ints and len(ints) == len(values) else None
        if ints and len(ints) == len(values):
            parity = 0
            for v in ints:
                parity |= _parity_of(v)
        else:
            parity = _PARITY_TOP
        if len(values) > VALUE_LIMIT:
            return AbstractValue(values=None, lo=lo, hi=hi, parity=parity)
        return AbstractValue(values=values, lo=lo, hi=hi, parity=parity)

    @staticmethod
    def interval(lo: int | None, hi: int | None,
                 parity: int = _PARITY_TOP) -> "AbstractValue":
        if lo is not None and hi is not None:
            if lo > hi or parity == 0:
                return BOTTOM
            if hi - lo + 1 <= VALUE_LIMIT:
                members = frozenset(
                    v for v in range(lo, hi + 1) if _parity_of(v) & parity
                )
                return AbstractValue._from_set(members)
        return AbstractValue(values=None, lo=lo, hi=hi, parity=parity)

    @staticmethod
    def from_domain(domain: Domain) -> "AbstractValue":
        """The abstraction of every value a concrete domain allows."""
        if isinstance(domain, FiniteDomain):
            return AbstractValue._from_set(frozenset(domain.values()))
        if isinstance(domain, IntegerDomain):
            return AbstractValue(values=None, lo=None, hi=None,
                                 parity=_PARITY_TOP)
        size = domain.size()
        if domain.is_finite and size is not None and size <= VALUE_LIMIT:
            return AbstractValue._from_set(frozenset(domain.values()))
        return TOP

    # -- lattice -------------------------------------------------------
    @property
    def is_bottom(self) -> bool:
        if self.values is not None:
            return not self.values
        if self.lo is not None and self.hi is not None and self.lo > self.hi:
            return True
        return self.parity == 0

    @property
    def is_singleton(self) -> bool:
        return self.values is not None and len(self.values) == 1

    @property
    def singleton(self) -> Any:
        if not self.is_singleton:
            raise ValueError("not a singleton abstract value")
        assert self.values is not None
        return next(iter(self.values))

    def join(self, other: "AbstractValue") -> "AbstractValue":
        if self.is_bottom:
            return other
        if other.is_bottom:
            return self
        if self.values is not None and other.values is not None:
            return AbstractValue._from_set(self.values | other.values)
        lo = None
        if self.lo is not None and other.lo is not None:
            lo = min(self.lo, other.lo)
        hi = None
        if self.hi is not None and other.hi is not None:
            hi = max(self.hi, other.hi)
        return AbstractValue(values=None, lo=lo, hi=hi,
                             parity=self.parity | other.parity)

    def meet(self, other: "AbstractValue") -> "AbstractValue":
        if self.is_bottom or other.is_bottom:
            return BOTTOM
        if self.values is not None and other.values is not None:
            return AbstractValue._from_set(self.values & other.values)
        if self.values is not None:
            return AbstractValue._from_set(
                frozenset(v for v in self.values if other.admits(v))
            )
        if other.values is not None:
            return AbstractValue._from_set(
                frozenset(v for v in other.values if self.admits(v))
            )
        lo = self.lo if other.lo is None else (
            other.lo if self.lo is None else max(self.lo, other.lo)
        )
        hi = self.hi if other.hi is None else (
            other.hi if self.hi is None else min(self.hi, other.hi)
        )
        parity = self.parity & other.parity
        if (lo is not None and hi is not None and lo > hi) or parity == 0:
            return BOTTOM
        return AbstractValue.interval(lo, hi, parity)

    def leq(self, other: "AbstractValue") -> bool:
        """Whether every concrete value this admits, ``other`` admits."""
        if self.is_bottom:
            return True
        if other.is_bottom:
            return False
        if self.values is not None:
            return all(other.admits(v) for v in self.values)
        if other.values is not None:
            # A set-free value admits infinitely many (or unenumerated)
            # concretisations; a finite set cannot cover them unless the
            # interval pins everything down — stay conservative.
            return False
        lo_ok = other.lo is None or (self.lo is not None and self.lo >= other.lo)
        hi_ok = other.hi is None or (self.hi is not None and self.hi <= other.hi)
        parity_ok = (self.parity | other.parity) == other.parity
        return lo_ok and hi_ok and parity_ok

    def admits(self, value: Any) -> bool:
        """Whether the concrete ``value`` is in this abstraction."""
        if self.values is not None:
            return value in self.values
        if not _is_int(value):
            # Interval/parity components only constrain integers.
            return self.lo is None and self.hi is None
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return bool(_parity_of(value) & self.parity)

    def __repr__(self) -> str:
        if self.is_bottom:
            return "AbstractValue(⊥)"
        if self.values is not None:
            inner = ", ".join(map(repr, sorted(self.values, key=repr)))
            return f"AbstractValue({{{inner}}})"
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        par = {1: ", even", 2: ", odd", 3: ""}[self.parity or 3]
        return f"AbstractValue([{lo}, {hi}]{par})"


TOP = AbstractValue(values=None, lo=None, hi=None, parity=_PARITY_TOP)
BOTTOM = AbstractValue(values=frozenset(), lo=None, hi=None, parity=0)

_TRUE = AbstractValue.of(True)
_FALSE = AbstractValue.of(False)
_EITHER = AbstractValue.of(False, True)

_COMPARISONS = frozenset({"=", "!=", "<", "<=", ">", ">="})
_CONNECTIVES = frozenset({"and", "or", "not"})


def _pairwise(a: AbstractValue, b: AbstractValue, op: Any) -> AbstractValue | None:
    """Pointwise application over two finite sets when small enough."""
    if a.values is None or b.values is None:
        return None
    if len(a.values) * len(b.values) > VALUE_LIMIT * 4:
        return None
    out: set[Any] = set()
    for x in a.values:
        for y in b.values:
            try:
                out.add(op(x, y))
            except Exception:
                return None
    return AbstractValue._from_set(frozenset(out))


def _arith(a: AbstractValue, b: AbstractValue, symbol: str,
           op: Any) -> AbstractValue:
    if a.is_bottom or b.is_bottom:
        return BOTTOM
    exact = _pairwise(a, b, op)
    if exact is not None:
        return exact
    if symbol == "+":
        lo = a.lo + b.lo if a.lo is not None and b.lo is not None else None
        hi = a.hi + b.hi if a.hi is not None and b.hi is not None else None
        return AbstractValue.interval(lo, hi, _parity_add(a.parity, b.parity))
    if symbol == "-":
        lo = a.lo - b.hi if a.lo is not None and b.hi is not None else None
        hi = a.hi - b.lo if a.hi is not None and b.lo is not None else None
        return AbstractValue.interval(lo, hi, _parity_add(a.parity, b.parity))
    if symbol == "*":
        bounds = [x * y
                  for x in (a.lo, a.hi) for y in (b.lo, b.hi)
                  if x is not None and y is not None]
        if len(bounds) == 4:
            return AbstractValue.interval(
                min(bounds), max(bounds), _parity_mul(a.parity, b.parity)
            )
        return AbstractValue(values=None, lo=None, hi=None,
                             parity=_parity_mul(a.parity, b.parity))
    if symbol == "mod" and b.is_singleton:
        k = b.singleton
        if _is_int(k) and k > 0:
            return AbstractValue.interval(0, k - 1)
    return TOP


def _parity_add(p: int, q: int) -> int:
    out = 0
    if p & _PARITY_EVEN and q & _PARITY_EVEN:
        out |= _PARITY_EVEN
    if p & _PARITY_ODD and q & _PARITY_ODD:
        out |= _PARITY_EVEN
    if p & _PARITY_EVEN and q & _PARITY_ODD:
        out |= _PARITY_ODD
    if p & _PARITY_ODD and q & _PARITY_EVEN:
        out |= _PARITY_ODD
    return out or _PARITY_TOP


def _parity_mul(p: int, q: int) -> int:
    out = 0
    if p & _PARITY_EVEN or q & _PARITY_EVEN:
        out |= _PARITY_EVEN
    if p & _PARITY_ODD and q & _PARITY_ODD:
        out |= _PARITY_ODD
    return out or _PARITY_TOP


def _compare(a: AbstractValue, b: AbstractValue, symbol: str) -> bool | None:
    """Three-valued comparison between abstractions."""
    if a.is_bottom or b.is_bottom:
        return None
    if symbol == "=":
        if a.is_singleton and b.is_singleton:
            return bool(a.singleton == b.singleton)
        if a.meet(b).is_bottom:
            return False
        return None
    if symbol == "!=":
        eq = _compare(a, b, "=")
        return None if eq is None else not eq
    # Ordered comparisons need numeric bounds on both sides.
    a_lo, a_hi = _numeric_bounds(a)
    b_lo, b_hi = _numeric_bounds(b)
    if a_lo is None and a_hi is None and b_lo is None and b_hi is None:
        return None
    if symbol == "<":
        if a_hi is not None and b_lo is not None and a_hi < b_lo:
            return True
        if a_lo is not None and b_hi is not None and a_lo >= b_hi:
            return False
        return None
    if symbol == "<=":
        if a_hi is not None and b_lo is not None and a_hi <= b_lo:
            return True
        if a_lo is not None and b_hi is not None and a_lo > b_hi:
            return False
        return None
    if symbol == ">":
        return _compare(b, a, "<")
    if symbol == ">=":
        return _compare(b, a, "<=")
    return None


def _numeric_bounds(a: AbstractValue) -> tuple[Any, Any]:
    if a.values is not None:
        try:
            return min(a.values), max(a.values)
        except TypeError:
            return None, None
    return a.lo, a.hi


def eval_expr(expr: Expr, env: Mapping[str, AbstractValue]) -> AbstractValue:
    """Abstractly evaluate ``expr`` under ``env`` (missing vars are ⊤)."""
    if isinstance(expr, _Var):
        return env.get(expr.name, TOP)
    if isinstance(expr, _Const):
        return AbstractValue.of(expr.value)
    if isinstance(expr, _Not):
        truth = eval_bool(expr.inner, env)
        if truth is None:
            return _EITHER
        return _FALSE if truth else _TRUE
    if isinstance(expr, BoolExpr):
        truth = eval_bool(expr, env)
        if truth is None:
            return _EITHER
        return _TRUE if truth else _FALSE
    if isinstance(expr, _Binary):
        left = eval_expr(expr.left, env)
        right = eval_expr(expr.right, env)
        return _arith(left, right, expr.symbol, expr.op)
    if isinstance(expr, _Ite):
        truth = eval_bool(expr.condition, env)
        if truth is True:
            return eval_expr(expr.then, env)
        if truth is False:
            return eval_expr(expr.otherwise, env)
        return eval_expr(expr.then, env).join(eval_expr(expr.otherwise, env))
    if isinstance(expr, _Fold):
        parts = [eval_expr(item, env) for item in expr.items]
        if any(p.is_bottom for p in parts):
            return BOTTOM
        if all(p.values is not None for p in parts):
            combos = 1
            for p in parts:
                combos *= len(p.values)  # type: ignore[arg-type]
            if combos <= VALUE_LIMIT * 4:
                out: set[Any] = set()
                for choice in itertools.product(
                    *(p.values for p in parts)  # type: ignore[misc]
                ):
                    try:
                        out.add(expr.op(iter(choice)))
                    except Exception:
                        return TOP
                return AbstractValue._from_set(frozenset(out))
        los = [p.lo for p in parts]
        his = [p.hi for p in parts]
        if expr.label == "min":
            lo = min((x for x in los if x is not None), default=None)
            lo = lo if all(x is not None for x in los) else None
            hi = min((x for x in his if x is not None), default=None)
            return AbstractValue.interval(lo, hi)
        if expr.label == "max":
            lo = max((x for x in los if x is not None), default=None)
            hi = max((x for x in his if x is not None), default=None)
            hi = hi if all(x is not None for x in his) else None
            return AbstractValue.interval(lo, hi)
        return TOP
    return TOP


def eval_bool(expr: Expr, env: Mapping[str, AbstractValue]) -> bool | None:
    """Three-valued truth of a boolean expression under ``env``."""
    if isinstance(expr, _Not):
        inner = eval_bool(expr.inner, env)
        return None if inner is None else not inner
    if isinstance(expr, BoolExpr):
        if expr.symbol == "and":
            left = eval_bool(expr.left, env)
            right = eval_bool(expr.right, env)
            if left is False or right is False:
                return False
            if left is True and right is True:
                return True
            return None
        if expr.symbol == "or":
            left = eval_bool(expr.left, env)
            right = eval_bool(expr.right, env)
            if left is True or right is True:
                return True
            if left is False and right is False:
                return False
            return None
        if expr.symbol in _COMPARISONS:
            left = eval_expr(expr.left, env)
            right = eval_expr(expr.right, env)
            return _compare(left, right, expr.symbol)
    value = eval_expr(expr, env)
    if value.is_singleton:
        return bool(value.singleton)
    if value.values is not None and not any(bool(v) for v in value.values):
        return False
    if value.values is not None and all(bool(v) for v in value.values):
        return True
    return None


def assume(expr: Expr, env: Mapping[str, AbstractValue],
           truth: bool = True) -> dict[str, AbstractValue]:
    """Refine ``env`` under the assumption that ``expr`` is ``truth``.

    Sound but incomplete: only variable-vs-expression comparisons and
    the boolean connectives refine anything; everything else returns the
    environment unchanged. The result always over-approximates the set
    of concrete states satisfying the assumption.
    """
    out = dict(env)
    _assume_into(expr, out, truth)
    return out


def _assume_into(expr: Expr, env: dict[str, AbstractValue],
                 truth: bool) -> None:
    if isinstance(expr, _Not):
        _assume_into(expr.inner, env, not truth)
        return
    if not isinstance(expr, BoolExpr):
        return
    if expr.symbol == "and":
        if truth:
            _assume_into(expr.left, env, True)
            _assume_into(expr.right, env, True)
        return
    if expr.symbol == "or":
        if not truth:
            _assume_into(expr.left, env, False)
            _assume_into(expr.right, env, False)
        return
    if expr.symbol not in _COMPARISONS:
        return
    symbol = expr.symbol if truth else _negate_symbol(expr.symbol)
    left, right = expr.left, expr.right
    if isinstance(right, _Var) and not isinstance(left, _Var):
        left, right = right, left
        symbol = _flip_symbol(symbol)
    if not isinstance(left, _Var):
        return
    other = eval_expr(right, env)
    current = env.get(left.name, TOP)
    refined = _refine(current, other, symbol)
    env[left.name] = refined
    if isinstance(right, _Var) and symbol == "=":
        env[right.name] = env.get(right.name, TOP).meet(current)


def _negate_symbol(symbol: str) -> str:
    return {"=": "!=", "!=": "=", "<": ">=", "<=": ">",
            ">": "<=", ">=": "<"}[symbol]


def _flip_symbol(symbol: str) -> str:
    return {"=": "=", "!=": "!=", "<": ">", "<=": ">=",
            ">": "<", ">=": "<="}[symbol]


def _refine(current: AbstractValue, other: AbstractValue,
            symbol: str) -> AbstractValue:
    if symbol == "=":
        return current.meet(other)
    if symbol == "!=":
        if other.is_singleton and current.values is not None:
            excluded = other.singleton
            return AbstractValue._from_set(
                frozenset(v for v in current.values if v != excluded)
            )
        return current
    lo, hi = _numeric_bounds(other)
    if symbol == "<" and hi is not None and _is_int(hi):
        return current.meet(AbstractValue.interval(None, hi - 1))
    if symbol == "<=" and hi is not None and _is_int(hi):
        return current.meet(AbstractValue.interval(None, hi))
    if symbol == ">" and lo is not None and _is_int(lo):
        return current.meet(AbstractValue.interval(lo + 1, None))
    if symbol == ">=" and lo is not None and _is_int(lo):
        return current.meet(AbstractValue.interval(lo, None))
    return current


# -- structural manipulation ------------------------------------------


class _Opaque(Exception):
    """Raised internally when an expression node cannot be handled."""


def exprs_equal(a: Expr, b: Expr) -> bool:
    """Structural equality of two DSL expressions.

    ``False`` means "not syntactically identical", never "semantically
    different" — callers must treat it as *don't know*.
    """
    if a is b:
        return True
    if isinstance(a, _Var) and isinstance(b, _Var):
        return a.name == b.name
    if isinstance(a, _Const) and isinstance(b, _Const):
        return bool(a.value == b.value) and type(a.value) is type(b.value)
    if isinstance(a, _Not) and isinstance(b, _Not):
        return exprs_equal(a.inner, b.inner)
    if isinstance(a, _Not) or isinstance(b, _Not):
        return False
    if isinstance(a, _Binary) and isinstance(b, _Binary):
        return (
            a.symbol == b.symbol
            and type(a) is type(b)
            and exprs_equal(a.left, b.left)
            and exprs_equal(a.right, b.right)
        )
    if isinstance(a, _Ite) and isinstance(b, _Ite):
        return (
            exprs_equal(a.condition, b.condition)
            and exprs_equal(a.then, b.then)
            and exprs_equal(a.otherwise, b.otherwise)
        )
    if isinstance(a, _Fold) and isinstance(b, _Fold):
        return (
            a.label == b.label
            and len(a.items) == len(b.items)
            and all(exprs_equal(x, y) for x, y in zip(a.items, b.items))
        )
    return False


def substitute(expr: Expr, updates: Mapping[str, Expr]) -> Expr | None:
    """Substitute ``updates`` into ``expr`` (weakest-precondition step).

    Returns the expression with every ``_Var`` named in ``updates``
    replaced by its right-hand side, or ``None`` when the expression
    contains a node kind substitution cannot rebuild (sound degradation
    to *don't know*).
    """
    try:
        return _substitute(expr, updates)
    except _Opaque:
        return None


def _substitute(expr: Expr, updates: Mapping[str, Expr]) -> Expr:
    if isinstance(expr, _Var):
        return updates.get(expr.name, expr)
    if isinstance(expr, _Const):
        return expr
    if isinstance(expr, _Not):
        inner = _substitute(expr.inner, updates)
        if not isinstance(inner, BoolExpr):
            raise _Opaque
        return _Not(inner)
    if isinstance(expr, BoolExpr):
        return BoolExpr(
            _substitute(expr.left, updates),
            _substitute(expr.right, updates),
            expr.symbol,
            expr.op,
        )
    if isinstance(expr, _Binary):
        return _Binary(
            _substitute(expr.left, updates),
            _substitute(expr.right, updates),
            expr.symbol,
            expr.op,
        )
    if isinstance(expr, _Ite):
        condition = _substitute(expr.condition, updates)
        if not isinstance(condition, BoolExpr):
            raise _Opaque
        return _Ite(
            condition,
            _substitute(expr.then, updates),
            _substitute(expr.otherwise, updates),
        )
    if isinstance(expr, _Fold):
        return _Fold(
            tuple(_substitute(item, updates) for item in expr.items),
            expr.op,
            expr.label,
        )
    raise _Opaque


def _is_pure(expr: Expr) -> bool:
    """Whether the expression is built only from known node kinds.

    Purity licenses the reflexivity rewrite ``e = e → true``: known
    nodes are deterministic and side-effect free.
    """
    if isinstance(expr, (_Var, _Const)):
        return True
    if isinstance(expr, _Not):
        return _is_pure(expr.inner)
    if isinstance(expr, _Binary):
        return _is_pure(expr.left) and _is_pure(expr.right)
    if isinstance(expr, _Ite):
        return (
            _is_pure(expr.condition)
            and _is_pure(expr.then)
            and _is_pure(expr.otherwise)
        )
    if isinstance(expr, _Fold):
        return all(_is_pure(item) for item in expr.items)
    return False


def _const_of(expr: Expr) -> Any:
    if isinstance(expr, _Const):
        return expr.value
    raise _Opaque


def simplify(expr: Expr) -> Expr:
    """Bottom-up simplification: constant folding, reflexivity, units."""
    if isinstance(expr, _Var):
        return expr
    if isinstance(expr, _Const):
        return expr
    if isinstance(expr, _Not):
        inner = simplify(expr.inner)
        if isinstance(inner, _Const):
            return _Const(not inner.value)
        if isinstance(inner, BoolExpr):
            return _Not(inner)
        return expr
    if isinstance(expr, _Binary):
        left = simplify(expr.left)
        right = simplify(expr.right)
        if isinstance(left, _Const) and isinstance(right, _Const):
            try:
                folded = expr.op(left.value, right.value)
            except Exception:
                folded = _Opaque
            if folded is not _Opaque:
                return _Const(folded)
        if expr.symbol == "=" and _is_pure(left) and _is_pure(
            right
        ) and exprs_equal(left, right):
            return _Const(True)
        if expr.symbol == "!=" and _is_pure(left) and _is_pure(
            right
        ) and exprs_equal(left, right):
            return _Const(False)
        if expr.symbol == "and":
            if isinstance(left, _Const):
                return right if left.value else _Const(False)
            if isinstance(right, _Const):
                return left if right.value else _Const(False)
        if expr.symbol == "or":
            if isinstance(left, _Const):
                return _Const(True) if left.value else right
            if isinstance(right, _Const):
                return _Const(True) if right.value else left
        cls = BoolExpr if isinstance(expr, BoolExpr) else _Binary
        return cls(left, right, expr.symbol, expr.op)
    if isinstance(expr, _Ite):
        condition = simplify(expr.condition)
        if isinstance(condition, _Const):
            return simplify(expr.then if condition.value else expr.otherwise)
        then = simplify(expr.then)
        otherwise = simplify(expr.otherwise)
        if isinstance(condition, BoolExpr):
            return _Ite(condition, then, otherwise)
        return expr
    if isinstance(expr, _Fold):
        items = tuple(simplify(item) for item in expr.items)
        if all(isinstance(item, _Const) for item in items):
            try:
                return _Const(expr.op(item.value for item in items))  # type: ignore[union-attr]
            except Exception:
                pass
        return _Fold(items, expr.op, expr.label)
    return expr


def _is_const_true(expr: Expr) -> bool:
    return isinstance(expr, _Const) and expr.value is True


def _is_const_false(expr: Expr) -> bool:
    return isinstance(expr, _Const) and (
        expr.value is False or expr.value is None or expr.value == 0
    ) and not isinstance(expr.value, str)


def _canonical_tokens(expr: Expr, names: dict[str, int]) -> str | None:
    """A serialization of ``expr`` with variables renamed by first use.

    Two expressions with the same tokens differ only in variable names
    (``names`` maps each original name to its first-use index, in
    insertion order), so a proof of one transfers to the other provided
    the variables' domains agree — the key fact behind the proof cache.
    Returns ``None`` for node kinds whose semantics the tokens cannot
    capture (custom folds, unknown nodes); those are never cached.
    """
    out: list[str] = []
    if _walk_tokens(expr, names, out):
        return "".join(out)
    return None


def _walk_tokens(expr: Expr, names: dict[str, int],
                 out: list[str]) -> bool:
    # Exact-type dispatch: these are the DSL's only node types, and a
    # subclass someone slips in degrades to "not cacheable", never to a
    # wrong key.
    kind = type(expr)
    if kind is BoolExpr or kind is _Binary:
        out.append(expr.symbol)  # type: ignore[attr-defined]
        out.append("(")
        if not _walk_tokens(expr.left, names, out):  # type: ignore[attr-defined]
            return False
        out.append(",")
        if not _walk_tokens(expr.right, names, out):  # type: ignore[attr-defined]
            return False
        out.append(")")
        return True
    if kind is _Var:
        index = names.get(expr.name)  # type: ignore[attr-defined]
        if index is None:
            index = len(names)
            names[expr.name] = index  # type: ignore[attr-defined]
        out.append(f"v{index}")
        return True
    if kind is _Const:
        value = expr.value  # type: ignore[attr-defined]
        out.append(f"c[{type(value).__name__}:{value!r}]")
        return True
    if kind is _Not:
        out.append("not(")
        if not _walk_tokens(expr.inner, names, out):  # type: ignore[attr-defined]
            return False
        out.append(")")
        return True
    if kind is _Ite:
        out.append("ite(")
        for item in (expr.condition, expr.then, expr.otherwise):  # type: ignore[attr-defined]
            if not _walk_tokens(item, names, out):
                return False
            out.append(",")
        out.append(")")
        return True
    if kind is _Fold and expr.label in ("min", "max"):  # type: ignore[attr-defined]
        out.append(expr.label)  # type: ignore[attr-defined]
        out.append("(")
        for item in expr.items:  # type: ignore[attr-defined]
            if not _walk_tokens(item, names, out):
                return False
            out.append(",")
        out.append(")")
        return True
    return False


@dataclass(frozen=True)
class Proof:
    """Evidence that a proof obligation was discharged statically.

    Attributes:
        rule: Which route succeeded — ``"simplify"`` (structural
            rewriting reached a constant), ``"abstract"`` (three-valued
            evaluation over the variable domains was definite), or
            ``"case-split"`` (bounded truth table over the formula's
            own variables).
        cases: Number of truth-table rows evaluated (0 for the
            enumeration-free routes).
    """

    rule: str
    cases: int

    def as_dict(self) -> dict[str, Any]:
        return {"rule": self.rule, "cases": self.cases}


class AbstractContext:
    """Proof context binding variable names to their concrete domains."""

    def __init__(self, domains: Mapping[str, Domain]) -> None:
        self._domains = dict(domains)
        self._env: dict[str, AbstractValue] = {
            name: AbstractValue.from_domain(domain)
            for name, domain in self._domains.items()
        }

    @property
    def env(self) -> dict[str, AbstractValue]:
        """A fresh copy of the domain-initial abstract environment."""
        return dict(self._env)

    def domain_value(self, name: str) -> AbstractValue:
        return self._env.get(name, TOP)

    def domain(self, name: str) -> Domain | None:
        return self._domains.get(name)

    # -- proving -------------------------------------------------------
    def prove_valid(self, expr: Expr, *,
                    budget: int = DEFAULT_CASE_BUDGET) -> Proof | None:
        """Prove ``expr`` true for every assignment of its variables.

        Tries, in order: structural simplification to the constant
        ``True``; definite abstract evaluation over the variable
        domains; a bounded truth table over the expression's own
        variables. Returns ``None`` (don't know) when all three fail —
        never a refutation.
        """
        reduced = simplify(expr)
        if _is_const_true(reduced):
            return Proof("simplify", 0)
        if isinstance(reduced, _Const):
            return None
        if eval_bool(reduced, self._env) is True:
            return Proof("abstract", 0)
        cases = self._case_split(reduced, budget, want=True)
        if cases is not None:
            return Proof("case-split", cases)
        return None

    def prove_unsat(self, expr: Expr, *,
                    budget: int = DEFAULT_CASE_BUDGET) -> Proof | None:
        """Prove ``expr`` false for every assignment of its variables."""
        reduced = simplify(expr)
        if _is_const_false(reduced):
            return Proof("simplify", 0)
        if isinstance(reduced, _Const):
            return None
        if eval_bool(reduced, self._env) is False:
            return Proof("abstract", 0)
        cases = self._case_split(reduced, budget, want=False)
        if cases is not None:
            return Proof("case-split", cases)
        return None

    def find_witness(self, expr: Expr, *,
                     budget: int = DEFAULT_CASE_BUDGET
                     ) -> dict[str, Any] | None:
        """A concrete assignment making ``expr`` true, if the bounded
        search finds one. ``None`` means *not found*, not *unsat*."""
        rows = self._rows(expr, budget)
        if rows is None:
            return None
        for row in rows:
            try:
                if bool(expr(row)):
                    return row
            except Exception:
                return None
        return None

    def _case_split(self, expr: Expr, budget: int,
                    *, want: bool) -> int | None:
        rows = self._rows(expr, budget)
        if rows is None:
            return None
        count = 0
        for row in rows:
            count += 1
            try:
                value = bool(expr(row))
            except Exception:
                return None
            if value is not want:
                return None
        return count

    def _rows(self, expr: Expr,
              budget: int) -> list[dict[str, Any]] | None:
        """Every assignment of the expression's variables, if affordable.

        This is a truth table over the *formula*, independent of the
        program's state space — the certificate records its size in
        ``cases`` so "zero enumeration" stays honest.
        """
        names = sorted(expr.variables())
        if not names:
            return [{}]
        columns: list[tuple[str, list[Any]]] = []
        total = 1
        for name in names:
            domain = self._domains.get(name)
            if domain is None or not domain.is_finite:
                return None
            size = domain.size()
            if size is None:
                return None
            total *= size
            if total > budget:
                return None
            columns.append((name, list(domain.values())))
        rows = []
        for choice in itertools.product(*(vals for _, vals in columns)):
            rows.append({name: value
                         for (name, _), value in zip(columns, choice)})
        return rows
