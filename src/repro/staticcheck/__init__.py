"""Static analysis: a protocol linter that runs before any state space.

The paper's side conditions (Section 4) and the design method's
obligations (Section 3) are all stated over the *true* read/write sets
of actions and constraints — but the core model takes guards and
right-hand sides as opaque Python callables and trusts the declared
sets. This package closes the gap:

- :mod:`~repro.staticcheck.infer` recovers the true sets into a
  :class:`SupportTable` — exactly for symbolic (DSL-built) callables,
  soundly-in-one-direction for opaque ones via a recording-state probe;
- :mod:`~repro.staticcheck.passes` checks the side conditions and emits
  :class:`Diagnostic` findings with stable codes (``RW001`` … ``IF004``),
  severities, source locations, and fix hints;
- :mod:`~repro.staticcheck.diagnostics` defines the code catalog and the
  :class:`LintReport` with its stable JSON schema;
- :mod:`~repro.staticcheck.absint` is an abstract interpreter over the
  expression DSL (finite-set x interval x parity domains) powering the
  semantic ``DF*`` diagnostics and the static proof routes;
- :mod:`~repro.staticcheck.interference` detects pairwise interference
  (``IF*``) and statically discharges compositional obligations into
  :class:`StaticCertificate` records consumed by
  :func:`repro.compositional.certify_compositional`;
- :mod:`~repro.staticcheck.selftest` is a seeded ill-formed design that
  triggers every code — the linter's own smoke test.

Entry points: :func:`lint_program`, :func:`lint_design`,
:func:`lint_case`, :func:`lint_library`; the CLI front-end is
``repro lint [--strict] [--json]``. See ``docs/STATIC_ANALYSIS.md`` for
the full catalog and the probe's soundness caveats.

A lint is O(actions x probe states) — milliseconds where exhaustive
verification takes seconds — so the verification service can run it as
an opt-in precheck (``VerificationService.verify_tolerance(lint=True)``)
and fail fast with a structured report instead of exploring a state
space the side conditions already doom.
"""

from repro.staticcheck.diagnostics import (
    CODES,
    ERROR,
    INFO,
    SEVERITIES,
    WARNING,
    Diagnostic,
    LintReport,
    diagnostic,
)
from repro.staticcheck.absint import (
    AbstractContext,
    AbstractValue,
    Proof,
    eval_expr,
)
from repro.staticcheck.infer import SupportRow, SupportTable, build_support_table
from repro.staticcheck.interference import StaticCertificate, StaticDischarger
from repro.staticcheck.passes import (
    lint_case,
    lint_design,
    lint_library,
    lint_program,
)
from repro.staticcheck.selftest import (
    EXPECTED_CODES,
    ill_formed_design,
    ill_formed_faults,
    selftest,
)

__all__ = [
    "AbstractContext",
    "AbstractValue",
    "CODES",
    "Diagnostic",
    "ERROR",
    "EXPECTED_CODES",
    "INFO",
    "LintReport",
    "Proof",
    "SEVERITIES",
    "StaticCertificate",
    "StaticDischarger",
    "SupportRow",
    "SupportTable",
    "WARNING",
    "build_support_table",
    "diagnostic",
    "eval_expr",
    "ill_formed_design",
    "ill_formed_faults",
    "lint_case",
    "lint_design",
    "lint_library",
    "lint_program",
    "selftest",
]
