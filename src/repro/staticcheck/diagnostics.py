"""Diagnostics: stable codes, severities, and the lint report.

Every finding of the protocol linter is a :class:`Diagnostic` with a
stable code from the :data:`CODES` catalog. Codes are namespaced by the
property family they check:

- ``RW*`` — declared versus inferred read/write sets of actions;
- ``CG*`` — the constraint-graph side conditions of Section 4;
- ``GD*`` — guard-level sanity (statically unsatisfiable guards);
- ``VT*`` — variable usage (dead variables);
- ``TH*`` — theorem preconditions prechecked on sampled states;
- ``CP*`` — compositional-certification feasibility (projection sizes);
- ``DF*`` — dataflow facts proved by the abstract interpreter over the
  expression DSL (dead guards, out-of-domain writes, tautologies,
  no-op assignments);
- ``IF*`` — interference between actions (write-write races, linear
  order conflicts, establishment failures, fault hazards).

Severities: an **error** is a finding that, if real, makes the paper's
side conditions fail or the declared model a lie; a **warning** is a
smell that does not by itself invalidate a design; an **info** is a
redundancy worth tidying. ``repro lint`` exits nonzero on errors (on any
finding under ``--strict``).

The JSON shapes produced by :meth:`Diagnostic.as_dict` and
:meth:`LintReport.as_dict` are treated as stable: the CLI JSON tests pin
them, and downstream tooling may rely on the exact key sets.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from repro.observability.report import RunReport

__all__ = [
    "ERROR",
    "WARNING",
    "INFO",
    "SEVERITIES",
    "CODES",
    "Diagnostic",
    "LintReport",
    "diagnostic",
]

#: The finding, if real, breaks a side condition or falsifies the model.
ERROR = "error"
#: A smell that does not by itself invalidate the design.
WARNING = "warning"
#: A redundancy worth tidying.
INFO = "info"

#: Severities from most to least severe (the report orders findings so).
SEVERITIES: tuple[str, ...] = (ERROR, WARNING, INFO)

#: The complete diagnostic catalog: code -> (severity, title, default hint).
CODES: dict[str, tuple[str, str, str]] = {
    "RW001": (
        ERROR,
        "declared read set does not cover the inferred reads",
        "add the missing variables to the action's reads= declaration "
        "(every recorded access is a real read)",
    ),
    "RW002": (
        ERROR,
        "statement writes a variable outside the declared write set",
        "make the statement's writes property agree with the variables "
        "its evaluation actually produces",
    ),
    "RW003": (
        INFO,
        "declared read set strictly exceeds the exact inferred reads",
        "drop the unused variables from reads= (exact because the guard "
        "and right-hand sides are symbolic)",
    ),
    "CG001": (
        ERROR,
        "constraint-graph node labels overlap",
        "node labels must partition the variables; move the shared "
        "variable into exactly one node",
    ),
    "CG002": (
        ERROR,
        "edge reads or writes escape the labels of its two nodes",
        "the action on edge v -> w may read only vars(v) | vars(w) and "
        "write only vars(w) (Section 4); shrink the action or relabel "
        "the nodes",
    ),
    "CG003": (
        ERROR,
        "constraint graph is cyclic but Theorem 1/2 was requested",
        "supply a layer partition and validate via Theorem 3, or apply "
        "a Section 7 refinement to break the cycle",
    ),
    "GD001": (
        WARNING,
        "guard is unsatisfiable over its variables' domains",
        "no assignment of the read variables enables the action, so it "
        "can never fire; fix the guard or delete the action",
    ),
    "VT001": (
        WARNING,
        "variable is never read by any action or predicate",
        "the variable cannot influence behaviour; delete it or wire it "
        "into a guard, right-hand side, or the invariant",
    ),
    "TH001": (
        ERROR,
        "theorem precondition fails on sampled states",
        "a convergence binding must be enabled whenever its constraint "
        "is violated and must establish it when fired (Section 3)",
    ),
    "CP001": (
        WARNING,
        "declared supports block compositional projection",
        "the joint variable set of this binding (action reads/writes plus "
        "constraint support) cannot be enumerated within the projection "
        "limit; shrink the declared sets or verify with --method full",
    ),
    "DF001": (
        WARNING,
        "guard is provably unsatisfiable (abstract interpretation)",
        "the abstract interpreter proved no reachable valuation enables "
        "this action — it is dead; fix the guard or delete the action",
    ),
    "DF002": (
        ERROR,
        "assignment provably writes a value outside the variable's domain",
        "every abstract value the right-hand side can take lies outside "
        "the target domain; executing the action would corrupt the state",
    ),
    "DF003": (
        INFO,
        "guard is provably tautological under the invariant",
        "the guard holds in every state satisfying the invariant, so the "
        "condition is redundant inside S; simplify it to true or rely on "
        "the invariant",
    ),
    "DF004": (
        WARNING,
        "action is provably a no-op",
        "every assignment provably rewrites the current value, so firing "
        "changes nothing and cannot help convergence; fix the right-hand "
        "sides or delete the action",
    ),
    "IF001": (
        WARNING,
        "write-write race between actions of different processes",
        "two concurrently enabled actions write the same variable with "
        "provably different values; serialize them or make the guards "
        "mutually exclusive",
    ),
    "IF002": (
        WARNING,
        "interference cycle defeats every linear order (Theorem 2)",
        "the convergence actions at this node certainly break each "
        "other's constraints, so no linear order discharges Theorem 2's "
        "third antecedent; decouple the constraints or refine the actions",
    ),
    "IF003": (
        ERROR,
        "convergence action provably fails to establish its constraint",
        "a concrete witness state exists where the action is enabled yet "
        "its own constraint is false afterwards, violating the binding "
        "contract of Section 3",
    ),
    "IF004": (
        WARNING,
        "fault writes reach a convergence guard outside the constraint",
        "a declared fault writes variables the convergence guard reads "
        "but the constraint does not mention, so faults can toggle "
        "enabledness without violating the constraint; widen the "
        "constraint support or narrow the guard",
    ),
}


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding.

    Attributes:
        code: Stable catalog code, e.g. ``"RW001"``.
        severity: One of :data:`SEVERITIES` (derived from the catalog).
        message: What was found, naming the exact variable sets involved.
        subject: The action/constraint/variable/node the finding is about.
        location: Best-effort ``file.py:lineno`` of the offending
            callable, or ``None`` when unknown.
        hint: How to fix it.
    """

    code: str
    severity: str
    message: str
    subject: str
    location: str | None = None
    hint: str = ""

    def as_dict(self) -> dict[str, object]:
        """The stable JSON-able form."""
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "subject": self.subject,
            "location": self.location,
            "hint": self.hint,
        }

    def __str__(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return f"{self.code} {self.severity}: {self.subject}: {self.message}{where}"


def diagnostic(
    code: str,
    message: str,
    *,
    subject: str,
    location: str | None = None,
    hint: str | None = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic`, filling severity and hint from the catalog.

    Raises:
        KeyError: if ``code`` is not in :data:`CODES` — every emitter must
            use a documented code.
    """
    severity, _title, default_hint = CODES[code]
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        subject=subject,
        location=location,
        hint=hint if hint is not None else default_hint,
    )


_SEVERITY_ORDER = {severity: index for index, severity in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class LintReport:
    """The outcome of linting one program or design.

    Attributes:
        subject: What was linted (program or design name).
        diagnostics: Every finding, ordered errors first.
        probes: Number of sampled states used for opaque-callable probing.
        seconds: Wall-clock spent linting.
    """

    subject: str
    diagnostics: tuple[Diagnostic, ...]
    probes: int
    seconds: float

    @property
    def ok(self) -> bool:
        """No error-severity findings (warnings and infos allowed)."""
        return not self.errors

    @property
    def strict_ok(self) -> bool:
        """No findings at all — the bar ``repro lint --strict`` applies."""
        return not self.diagnostics

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == WARNING)

    @property
    def infos(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == INFO)

    def by_code(self, code: str) -> tuple[Diagnostic, ...]:
        """Every finding with the given catalog code."""
        return tuple(d for d in self.diagnostics if d.code == code)

    def codes(self) -> frozenset[str]:
        """The distinct codes that fired."""
        return frozenset(d.code for d in self.diagnostics)

    def __bool__(self) -> bool:
        return self.ok

    def as_dict(self) -> dict[str, object]:
        """The stable JSON-able form (pinned by the CLI JSON tests)."""
        return {
            "subject": self.subject,
            "ok": self.ok,
            "strict_ok": self.strict_ok,
            "probes": self.probes,
            "seconds": self.seconds,
            "counts": {
                ERROR: len(self.errors),
                WARNING: len(self.warnings),
                INFO: len(self.infos),
            },
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def to_json(self) -> dict[str, object]:
        """:class:`~repro.api.Verdict` spelling of :meth:`as_dict`."""
        return self.as_dict()

    def describe(self) -> str:
        """Human-readable rendering, one line per finding plus a summary."""
        lines = [f"lint {self.subject}: " + ("clean" if self.strict_ok else (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.infos)} info(s)"
        ))]
        for d in self.diagnostics:
            lines.append(f"  {d}")
            if d.hint:
                lines.append(f"    hint: {d.hint}")
        return "\n".join(lines)

    def run_report(self, **meta) -> RunReport:
        """The observability :class:`RunReport` form of this lint run.

        Counters are per severity plus one ``lint.code.<CODE>`` counter
        per fired code; the single timer is the lint wall-clock.
        """
        counters = {
            "lint.diagnostics": len(self.diagnostics),
            "lint.errors": len(self.errors),
            "lint.warnings": len(self.warnings),
            "lint.infos": len(self.infos),
        }
        for code in sorted(self.codes()):
            counters[f"lint.code.{code}"] = len(self.by_code(code))
        timers = {
            "lint": {
                "count": 1.0,
                "total": self.seconds,
                "mean": self.seconds,
                "min": self.seconds,
                "max": self.seconds,
            }
        }
        return RunReport(
            counters=counters,
            timers=timers,
            meta={"subject": self.subject, "probes": self.probes, **meta},
        )


def ordered(diagnostics: Iterable[Diagnostic]) -> tuple[Diagnostic, ...]:
    """Sort findings by severity (errors first), then code, then location.

    The full key is ``(severity, code, location, subject, message)``, so
    two runs over the same subject produce byte-identical reports no
    matter what order the detectors emitted in — the determinism the CLI
    JSON output and the docs' examples rely on.
    """
    return tuple(
        sorted(
            diagnostics,
            key=lambda d: (
                _SEVERITY_ORDER.get(d.severity, 99),
                d.code,
                d.location or "",
                d.subject,
                d.message,
            ),
        )
    )
