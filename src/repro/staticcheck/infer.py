"""Support tables: the analysis IR of the linter.

A :class:`SupportTable` is one row per action (and, for designs, per
constraint) pairing the *declared* read/write sets against the *inferred*
ones (:class:`~repro.core.introspect.InferredSupport`). The ``RW*``
passes are pure functions of this table; building it is the only part of
the linter that touches guards and statements, so the probe budget is
paid exactly once per subject.

Soundness: a probe-inferred read is a real read (the proxy recorded the
access), so ``undeclared_reads`` is reliable for every method. The
reverse direction — a declared read the probe never saw — proves nothing
for probed rows; ``over_declared_reads`` is therefore empty unless the
row is symbolically exact.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from repro.core.constraints import Constraint
from repro.core.fingerprint import PROBE_STATES, probe_states
from repro.core.introspect import InferredSupport, callable_location
from repro.core.program import Program
from repro.core.state import State

__all__ = ["SupportRow", "SupportTable", "build_support_table"]


@dataclass(frozen=True)
class SupportRow:
    """Declared versus inferred support of one action or constraint.

    Attributes:
        kind: ``"action"`` or ``"constraint"``.
        name: The subject's name.
        declared_reads: What the subject declares it reads (a constraint's
            declared support).
        declared_writes: What the subject declares it writes (empty for
            constraints).
        inferred: The inference result, with its method and probe count.
        location: Best-effort source location of the subject's callable.
    """

    kind: str
    name: str
    declared_reads: frozenset[str]
    declared_writes: frozenset[str]
    inferred: InferredSupport
    location: str | None

    @property
    def undeclared_reads(self) -> frozenset[str]:
        """Inferred reads missing from the declaration — always sound."""
        return self.inferred.reads - self.declared_reads

    @property
    def undeclared_writes(self) -> frozenset[str]:
        """Inferred writes missing from the declaration — always sound."""
        return self.inferred.writes - self.declared_writes

    @property
    def over_declared_reads(self) -> frozenset[str]:
        """Declared reads provably never consulted.

        Nonempty only for symbolically exact rows; declared writes are
        excluded because the convention (``expr_action``) counts written
        variables as read-write state.
        """
        if not self.inferred.exact:
            return frozenset()
        return self.declared_reads - self.inferred.reads - self.declared_writes

    def as_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "name": self.name,
            "declared_reads": sorted(self.declared_reads),
            "declared_writes": sorted(self.declared_writes),
            "inferred_reads": sorted(self.inferred.reads),
            "inferred_writes": sorted(self.inferred.writes),
            "method": self.inferred.method,
            "location": self.location,
        }


@dataclass(frozen=True)
class SupportTable:
    """The per-subject support rows of one program or design.

    Attributes:
        subject: The program/design name the table describes.
        rows: One row per action, then one per constraint.
        probes: Size of the sampled-state battery used for opaque rows.
    """

    subject: str
    rows: tuple[SupportRow, ...]
    probes: int

    def row(self, name: str) -> SupportRow:
        """The row for the named action or constraint.

        Raises:
            KeyError: if no row has that name.
        """
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(f"support table for {self.subject!r} has no row {name!r}")

    def actions(self) -> tuple[SupportRow, ...]:
        return tuple(row for row in self.rows if row.kind == "action")

    def constraints(self) -> tuple[SupportRow, ...]:
        return tuple(row for row in self.rows if row.kind == "constraint")

    def as_dict(self) -> dict[str, object]:
        return {
            "subject": self.subject,
            "probes": self.probes,
            "rows": [row.as_dict() for row in self.rows],
        }

    def describe(self) -> str:
        """Aligned text rendering of declared versus inferred sets."""
        lines = [f"support table: {self.subject} ({self.probes} probe states)"]
        width = max((len(row.name) for row in self.rows), default=0)
        for row in self.rows:
            lines.append(
                f"  {row.name.ljust(width)}  [{row.inferred.method:>8}]"
                f" reads {sorted(row.declared_reads)} -> {sorted(row.inferred.reads)}"
                f" writes {sorted(row.declared_writes)}"
                f" -> {sorted(row.inferred.writes)}"
            )
        return "\n".join(lines)


def _action_location(action) -> str | None:
    location = callable_location(action.guard)
    if location is not None:
        return location
    for rhs in action.effect.updates.values():
        if callable(rhs):
            location = callable_location(rhs)
            if location is not None:
                return location
    return None


def build_support_table(
    program: Program,
    constraints: Iterable[Constraint] = (),
    *,
    probes: int = PROBE_STATES,
    states: Sequence[State] | None = None,
) -> SupportTable:
    """Infer the support of every action of ``program`` (and constraint).

    Args:
        program: The program whose actions are analysed.
        constraints: Optional constraints (a design's decomposition) to
            include as predicate rows.
        probes: Size of the deterministic sampled-state battery used for
            opaque callables (ignored when ``states`` is given).
        states: An explicit probe battery, for callers that already built
            one.
    """
    battery = (
        list(states) if states is not None else probe_states(program, limit=probes)
    )
    rows: list[SupportRow] = []
    for action in program.actions:
        rows.append(
            SupportRow(
                kind="action",
                name=action.name,
                declared_reads=action.reads,
                declared_writes=action.writes,
                inferred=action.inferred_support(battery),
                location=_action_location(action),
            )
        )
    for constraint in constraints:
        rows.append(
            SupportRow(
                kind="constraint",
                name=constraint.name,
                declared_reads=constraint.support,
                declared_writes=frozenset(),
                inferred=constraint.inferred_support(battery),
                location=callable_location(constraint.predicate),
            )
        )
    return SupportTable(subject=program.name, rows=tuple(rows), probes=len(battery))
