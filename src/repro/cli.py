"""Command-line interface.

Exposes the library's protocol registry for quick exploration::

    python -m repro list
    python -m repro verify diffusing --size 4
    python -m repro verify token-ring --fairness none
    python -m repro verify-all --workers 4 --json BENCH_verification.json
    python -m repro lint --strict
    python -m repro simulate dijkstra-ring --size 10 --trials 20
    python -m repro render token-ring --size 5

``verify`` runs T-tolerance checking on a small instance of the chosen
protocol through the cached verification service (pass ``--cache DIR``
to persist verdicts across invocations, ``--method compositional`` to
certify from per-edge projections without building the product state
space — sizes far beyond the exhaustive budget work, and ``--quantify``
to additionally report expected/fault-weighted/worst-case convergence
times and the masking-distance score — see docs/QUANTITATIVE.md);
``verify-all``
fans the whole case library out over a worker pool; ``lint`` runs the
static side-condition checks of :mod:`repro.staticcheck` over the case
library without touching any state space; ``simulate`` measures
stabilization from random corruption; ``render`` prints the paper-style
guarded-command listing. Every command is deterministic given ``--seed``.

Exit codes follow one convention across commands: **0** — success
(verified / stabilized / lint clean at the applied bar); **1** — the
check ran and failed (a verdict was NOT ok, or lint found errors — any
finding at all under ``--strict``); **2** — usage error (unknown
protocol/case, invalid size, unavailable mode), also used by argparse
itself.

Observability: ``verify``, ``verify-all`` and ``simulate`` accept
``--trace FILE`` (structured JSONL events — see docs/OBSERVABILITY.md)
and ``--metrics`` (an aggregated cache/timing report after the normal
output); ``verify`` and ``verify-all`` accept ``--json PATH`` for
machine-readable verdicts.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.core import Predicate, Program, render_program
from repro.observability import (
    CountingSink,
    JsonlSink,
    MetricsRegistry,
    RunReport,
    Sink,
    Tracer,
)
from repro.quantitative import DEFAULT_FAULT_RATE
from repro.scheduler import RandomScheduler
from repro.simulation import stabilization_trials
from repro.verification import VerificationService, batch_report, run_batch

__all__ = ["main", "PROTOCOLS"]


@dataclass(frozen=True)
class RegisteredProtocol:
    """A protocol the CLI can build at a parameterized size."""

    name: str
    description: str
    #: size -> (program, invariant). ``size`` means nodes/machines.
    build: Callable[[int], tuple[Program, Predicate]]
    default_size: int
    #: Largest size safe for exhaustive verification.
    max_verify_size: int
    #: size -> NonmaskingDesign, when the protocol ships its constraint
    #: graph decomposition (enables ``verify --method compositional``).
    build_design: Callable[[int], object] | None = None


def _build_diffusing(size: int):
    from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant
    from repro.topology import random_tree

    tree = random_tree(size, seed=1)
    design = build_diffusing_design(tree)
    return design.program, diffusing_invariant(tree)


def _build_token_ring(size: int):
    from repro.protocols.token_ring import build_token_ring_design, ring_invariant
    from repro.topology import Ring

    design = build_token_ring_design(size)
    return design.program, ring_invariant(Ring(size))


def _build_dijkstra(size: int):
    from repro.protocols.token_ring import build_dijkstra_ring

    return build_dijkstra_ring(size, k=size + 1)


def _build_mp_ring(size: int):
    from repro.protocols.mp_token_ring import build_mp_token_ring

    return build_mp_token_ring(size, k=max(3, size - 1))


def _build_coloring(size: int):
    from repro.protocols.coloring import build_coloring_design, coloring_invariant
    from repro.topology import random_tree

    tree = random_tree(size, seed=1)
    design = build_coloring_design(tree, k=3)
    return design.program, coloring_invariant(tree)


def _build_leader(size: int):
    from repro.protocols.leader_election import (
        build_leader_election_design,
        election_invariant,
    )
    from repro.topology import random_tree

    tree = random_tree(size, seed=1)
    design = build_leader_election_design(tree)
    return design.program, election_invariant(tree)


def _design_diffusing(size: int):
    from repro.protocols.diffusing import build_diffusing_design
    from repro.topology import random_tree

    return build_diffusing_design(random_tree(size, seed=1))


def _design_coloring(size: int):
    from repro.protocols.coloring import build_coloring_design
    from repro.topology import random_tree

    return build_coloring_design(random_tree(size, seed=1), k=3)


def _design_leader(size: int):
    from repro.protocols.leader_election import build_leader_election_design
    from repro.topology import random_tree

    return build_leader_election_design(random_tree(size, seed=1))


def _build_spanning(size: int):
    from repro.protocols.spanning_tree import (
        build_spanning_tree_program,
        spanning_tree_invariant,
    )
    from repro.topology import random_connected_graph

    graph = random_connected_graph(size, size // 2, seed=1)
    return build_spanning_tree_program(graph, 0), spanning_tree_invariant(graph, 0)


def _build_matching(size: int):
    from repro.protocols.matching import build_matching_program, matching_invariant
    from repro.topology import random_connected_graph

    graph = random_connected_graph(size, size // 2, seed=1)
    return build_matching_program(graph), matching_invariant(graph)


def _build_mis(size: int):
    from repro.protocols.independent_set import build_mis_program, mis_invariant
    from repro.topology import random_connected_graph

    graph = random_connected_graph(size, size // 2, seed=1)
    return build_mis_program(graph), mis_invariant(graph)


def _build_graph_coloring(size: int):
    from repro.protocols.graph_coloring import (
        build_graph_coloring_program,
        graph_coloring_invariant,
    )
    from repro.topology import random_connected_graph

    graph = random_connected_graph(size, size // 2, seed=1)
    return build_graph_coloring_program(graph), graph_coloring_invariant(graph)


def _build_four_state(size: int):
    from repro.protocols.four_state_ring import (
        build_four_state_line,
        four_state_invariant,
    )

    program = build_four_state_line(size)
    return program, four_state_invariant(program)


def _build_reset(size: int):
    from repro.protocols.reset import build_reset_program, reset_target
    from repro.topology import random_tree

    tree = random_tree(size, seed=1)
    return build_reset_program(tree, app_values=2), reset_target(tree)


PROTOCOLS: dict[str, RegisteredProtocol] = {
    p.name: p
    for p in [
        RegisteredProtocol(
            "diffusing", "stabilizing diffusing computation (paper S5.1)",
            _build_diffusing, 7, 7, build_design=_design_diffusing,
        ),
        RegisteredProtocol(
            "token-ring", "the paper's token ring over unbounded counters (S7.1)",
            _build_token_ring, 5, 0,  # unbounded domain: no exhaustive check
        ),
        RegisteredProtocol(
            "dijkstra-ring", "Dijkstra's K-state ring (K = size + 1)",
            _build_dijkstra, 5, 5,
        ),
        RegisteredProtocol(
            "mp-ring", "message-passing token ring (S7.1 reader exercise)",
            _build_mp_ring, 4, 4,
        ),
        RegisteredProtocol(
            "coloring", "stabilizing tree coloring", _build_coloring, 6, 6,
            build_design=_design_coloring,
        ),
        RegisteredProtocol(
            "leader-election", "stabilizing leader election on a tree",
            _build_leader, 5, 5, build_design=_design_leader,
        ),
        RegisteredProtocol(
            "spanning-tree", "stabilizing BFS spanning tree",
            _build_spanning, 4, 4,
        ),
        RegisteredProtocol(
            "matching", "Hsu-Huang maximal matching", _build_matching, 5, 5,
        ),
        RegisteredProtocol(
            "mis", "maximal independent set", _build_mis, 6, 6,
        ),
        RegisteredProtocol(
            "graph-coloring", "greedy graph coloring", _build_graph_coloring, 5, 5,
        ),
        RegisteredProtocol(
            "four-state", "Dijkstra's four-state line", _build_four_state, 5, 6,
        ),
        RegisteredProtocol(
            "reset", "distributed reset on diffusing waves", _build_reset, 4, 4,
        ),
    ]
}


def _open_tracer(
    args: argparse.Namespace, extra_sinks: Sequence[Sink] = ()
) -> Tracer | None:
    """A tracer for this invocation, or ``None`` when nothing listens.

    Combines ``--trace FILE`` (a JSONL sink) with any ``extra_sinks``
    the command wants (e.g. an event counter for ``--metrics``).
    """
    sinks: list[Sink] = list(extra_sinks)
    if getattr(args, "trace", None):
        sinks.append(JsonlSink(args.trace))
    return Tracer(sinks=sinks) if sinks else None


def _write_json(path: str, payload: dict) -> None:
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def _byte_size(text: str) -> int:
    """Parse a byte count with an optional K/M/G suffix (``512M``)."""
    scales = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    raw = text.strip()
    scale = scales.get(raw[-1:].upper(), 1)
    digits = raw[:-1] if scale != 1 else raw
    try:
        value = int(digits) * scale
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"{text!r} is not a byte count (expected an integer, optionally "
            "suffixed K, M or G)"
        ) from None
    if value <= 0:
        raise argparse.ArgumentTypeError("byte count must be positive")
    return value


def _command_list(_args: argparse.Namespace) -> int:
    width = max(len(name) for name in PROTOCOLS)
    for name, entry in PROTOCOLS.items():
        print(f"{name.ljust(width)}  {entry.description}")
    return 0


def _resolve(name: str) -> RegisteredProtocol:
    try:
        return PROTOCOLS[name]
    except KeyError:
        # Usage error: message on stderr, exit 2 (the lint convention).
        known = ", ".join(PROTOCOLS)
        print(f"unknown protocol {name!r}; known: {known}", file=sys.stderr)
        raise SystemExit(2) from None


def _command_verify(args: argparse.Namespace) -> int:
    entry = _resolve(args.protocol)
    size = args.size if args.size is not None else min(
        entry.default_size, entry.max_verify_size or entry.default_size
    )
    if args.quantify and args.method == "compositional":
        print(
            "--quantify needs state-space exploration; it cannot be "
            "combined with --method compositional",
            file=sys.stderr,
        )
        return 2
    design = None
    if args.method != "full" and entry.build_design is not None:
        design = entry.build_design(size)
    if args.method == "compositional" and design is None:
        print(
            f"{entry.name} has no registered design; --method compositional "
            "needs the constraint-graph decomposition",
            file=sys.stderr,
        )
        return 2
    # The exhaustive-budget guards only apply when the product state
    # space may actually be built; an explicit compositional request
    # never builds it (the certifier refuses oversize projections).
    if args.method != "compositional":
        if entry.max_verify_size == 0:
            print(
                f"{entry.name} uses unbounded domains; exhaustive verification "
                "is unavailable — use `simulate`, or verify `dijkstra-ring`."
            )
            return 2
        if size > entry.max_verify_size:
            print(
                f"size {size} exceeds the exhaustive budget for {entry.name} "
                f"(max {entry.max_verify_size})"
            )
            return 2
    if design is not None:
        program, invariant = design.program, design.candidate.invariant
    else:
        program, invariant = entry.build(size)
    tracer = _open_tracer(args)
    metrics = MetricsRegistry() if args.metrics else None
    try:
        from repro.quantitative import QuantitativeUnsupported

        service = VerificationService(
            cache_dir=args.cache, tracer=tracer, metrics=metrics
        )
        try:
            verdict = service.verify_tolerance(
                program,
                invariant,
                fairness=args.fairness,
                engine=args.engine,
                method=args.method,
                design=design,
                case=f"{entry.name} (n={size})",
                shards=args.shards,
                memory_budget=args.memory_budget,
                quantify=args.quantify,
                fault_rate=args.fault_rate,
            )
        except QuantitativeUnsupported as error:
            print(error, file=sys.stderr)
            return 2
    finally:
        if tracer is not None:
            tracer.close()
    print(verdict.describe())
    if args.metrics:
        print()
        print(service.report(case=f"{entry.name} (n={size})").describe())
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.json:
        _write_json(
            args.json,
            {
                "command": "verify",
                "protocol": entry.name,
                "size": size,
                "fairness": args.fairness,
                "engine": args.engine,
                "method": args.method,
                "quantify": args.quantify,
                "record": verdict.record,
                "cached": verdict.cached,
                "cache_layer": verdict.cache_layer,
                "call_seconds": verdict.seconds,
            },
        )
        print(f"verdict written to {args.json}")
    return 0 if verdict.ok else 1


def _command_verify_all(args: argparse.Namespace) -> int:
    from repro.analysis import render_table
    from repro.core.errors import ValidationError
    from repro.protocols.library import case_names, library_tasks

    try:
        tasks = library_tasks(
            names=args.case if args.case else None,
            fairness=args.fairness,
            engine=args.engine,
        )
    except ValidationError as error:
        # Usage error: message on stderr, exit 2 (the lint convention).
        known = ", ".join(case_names())
        print(f"{error}; known cases: {known}", file=sys.stderr)
        return 2
    tracer = _open_tracer(args)
    started = time.perf_counter()
    try:
        records = run_batch(
            tasks, workers=args.workers, cache_dir=args.cache, tracer=tracer
        )
    finally:
        if tracer is not None:
            tracer.close()
    elapsed = time.perf_counter() - started
    rows = [
        [
            record["case"],
            record["total_states"],
            record["classification"],
            record["stabilizing"],
            record["ok"],
            "hit" if record["cached"] else "miss",
            f"{record['call_seconds']:.3f}s",
        ]
        for record in records
    ]
    print(
        render_table(
            ["case", "states", "class", "stabilizing", "T-tolerant for S",
             "cache", "time"],
            rows,
            title=f"verify-all: {len(records)} instances, "
            f"workers={args.workers}, {elapsed:.2f}s wall-clock",
        )
    )
    report = batch_report(
        records, wall_clock_seconds=elapsed, workers=args.workers
    )
    if args.metrics:
        print()
        print(report.describe())
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.json:
        _write_json(
            args.json,
            {
                "workers": args.workers,
                "wall_clock_seconds": elapsed,
                "instances": records,
                "metrics": report.as_dict(),
            },
        )
        print(f"timings written to {args.json}")
    return 0 if all(record["ok"] for record in records) else 1


def _command_lint(args: argparse.Namespace) -> int:
    from repro.analysis import render_table
    from repro.core.errors import ValidationError
    from repro.staticcheck import lint_library

    counting = CountingSink() if args.metrics else None
    tracer = _open_tracer(args, [counting] if counting is not None else ())
    metrics = MetricsRegistry() if args.metrics else None
    started = time.perf_counter()
    try:
        reports = lint_library(
            names=args.case if args.case else None,
            probes=args.probes,
            semantic=args.semantic,
            tracer=tracer,
            metrics=metrics,
        )
    except ValidationError as error:
        print(error, file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            tracer.close()
    elapsed = time.perf_counter() - started
    rows = []
    for report in reports.values():
        if report.strict_ok:
            verdict = "clean"
        elif report.ok:
            verdict = "findings"
        else:
            verdict = "FAIL"
        rows.append(
            [
                report.subject,
                len(report.errors),
                len(report.warnings),
                len(report.infos),
                verdict,
                f"{report.seconds * 1000:.1f}ms",
            ]
        )
    print(
        render_table(
            ["case", "errors", "warnings", "infos", "verdict", "time"],
            rows,
            title=f"lint: {len(reports)} case(s), probes={args.probes}, "
            f"strict={'on' if args.strict else 'off'}, "
            f"semantic={'on' if args.semantic else 'off'}, "
            f"{elapsed * 1000:.0f}ms wall-clock",
        )
    )
    for report in reports.values():
        if not report.strict_ok:
            print()
            print(report.describe())
    all_ok = all(report.ok for report in reports.values())
    all_strict = all(report.strict_ok for report in reports.values())
    if args.metrics and metrics is not None:
        print()
        print(
            metrics.report(
                command="lint", cases=len(reports), strict=args.strict
            ).describe()
        )
    if args.trace:
        print(f"trace written to {args.trace}")
    if args.json:
        _write_json(
            args.json,
            {
                "command": "lint",
                "strict": args.strict,
                "semantic": args.semantic,
                "probes": args.probes,
                "ok": all_ok,
                "strict_ok": all_strict,
                "wall_clock_seconds": elapsed,
                "cases": [report.as_dict() for report in reports.values()],
            },
        )
        print(f"lint report written to {args.json}")
    failed = (not all_ok) or (args.strict and not all_strict)
    return 1 if failed else 0


def _command_simulate(args: argparse.Namespace) -> int:
    entry = _resolve(args.protocol)
    size = args.size if args.size is not None else entry.default_size
    program, invariant = entry.build(size)
    counting = CountingSink() if args.metrics else None
    tracer = _open_tracer(args, [counting] if counting is not None else ())
    try:
        stats = stabilization_trials(
            program,
            invariant,
            lambda seed: RandomScheduler(seed),
            trials=args.trials,
            max_steps=args.max_steps,
            base_seed=args.seed,
            tracer=tracer,
        )
    finally:
        if tracer is not None:
            tracer.close()
    print(
        f"{entry.name} (size {size}): {stats.stabilized_count}/{args.trials} "
        f"trials stabilized"
    )
    if stats.steps is not None:
        print(f"steps to stabilize: {stats.steps}")
    if counting is not None:
        report = RunReport(
            counters={
                "trials": args.trials,
                "stabilized": stats.stabilized_count,
                **dict(sorted(counting.counts.items())),
            },
            meta={"protocol": entry.name, "size": size, "seed": args.seed},
        )
        print()
        print(report.describe())
    if args.trace:
        print(f"trace written to {args.trace}")
    return 0 if stats.all_stabilized else 1


def _command_render(args: argparse.Namespace) -> int:
    entry = _resolve(args.protocol)
    size = args.size if args.size is not None else entry.default_size
    program, _ = entry.build(size)
    print(render_program(program))
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.verification.server import serve

    tracer = _open_tracer(args)
    try:
        daemon = asyncio.run(
            serve(
                host=args.host,
                port=args.port,
                cache_dir=args.cache,
                workers=args.workers,
                batch_window=args.batch_window,
                max_batch=args.max_batch,
                store_shards=args.store_shards,
                warm_capacity=args.warm_capacity,
                store_entries=args.store_entries,
                store_bytes=args.store_bytes,
                tracer=tracer,
            )
        )
    except KeyboardInterrupt:
        # Loops without signal-handler support: ^C lands here after the
        # drain path could not run; exit quietly anyway.
        return 0
    finally:
        if tracer is not None:
            tracer.close()
    if args.metrics:
        print(daemon.report().describe())
    if args.trace:
        print(f"trace written to {args.trace}")
    return 0


def _add_observability_flags(command: argparse.ArgumentParser) -> None:
    command.add_argument(
        "--trace", default=None, metavar="FILE",
        help="write structured trace events as JSON lines to FILE",
    )
    command.add_argument(
        "--metrics", action="store_true",
        help="print an aggregated metrics report after the normal output",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nonmasking fault-tolerance toolkit (Arora-Gouda-Varghese 1994)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered protocols").set_defaults(
        handler=_command_list
    )

    verify = commands.add_parser(
        "verify", help="exhaustively verify T-tolerance on a small instance"
    )
    verify.add_argument("protocol")
    verify.add_argument("--size", type=int, default=None)
    verify.add_argument(
        "--fairness", choices=("weak", "none"), default="weak",
        help="computation model for convergence",
    )
    verify.add_argument(
        "--engine", choices=("auto", "packed", "dict"), default="auto",
        help="exploration engine: packed integer kernel, dict states, or "
        "auto (packed with dict fallback); verdicts are identical",
    )
    verify.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="shard the packed engine's vectorized full-space sweep over N "
        "contiguous code ranges (default: auto; results are bit-identical "
        "for any shard count)",
    )
    verify.add_argument(
        "--memory-budget", type=_byte_size, default=None, metavar="BYTES",
        help="peak-bytes target for the packed engine's full-space sweep "
        "(accepts K/M/G suffixes, e.g. 512M); above it the streaming "
        "count-only path runs shard-at-a-time — results are identical, "
        "only peak memory changes (default: never stream)",
    )
    verify.add_argument(
        "--method", choices=("auto", "full", "compositional"), default="auto",
        help="verification method: full product-space exploration, "
        "compositional per-edge certification (repro.compositional; needs "
        "a protocol with a registered design), or auto (compositional "
        "when a design is available, falling back to full on refusal)",
    )
    verify.add_argument(
        "--quantify", action="store_true",
        help="also run the quantitative tolerance analysis "
        "(repro.quantitative): expected, fault-weighted and adversarial "
        "worst-case convergence times plus the masking-distance score; "
        "incompatible with --method compositional",
    )
    verify.add_argument(
        "--fault-rate", type=float, default=DEFAULT_FAULT_RATE,
        metavar="RATE",
        help="relative fault-action weight for the quantitative "
        f"fault-weighted expectation (default {DEFAULT_FAULT_RATE})",
    )
    verify.add_argument(
        "--cache", default=None, metavar="DIR",
        help="persist verdicts in DIR so repeat invocations are cache hits",
    )
    verify.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable verdict to PATH",
    )
    _add_observability_flags(verify)
    verify.set_defaults(handler=_command_verify)

    verify_all = commands.add_parser(
        "verify-all",
        help="verify the whole case library through the parallel service",
    )
    verify_all.add_argument(
        "--case", action="append", default=None, metavar="NAME",
        help="restrict to this case (repeatable); default: every case",
    )
    verify_all.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = sequential in-process)",
    )
    verify_all.add_argument(
        "--fairness", choices=("weak", "none"), default="weak",
        help="computation model for convergence",
    )
    verify_all.add_argument(
        "--engine", choices=("auto", "packed", "dict"), default="auto",
        help="exploration engine for every task (see `verify --engine`)",
    )
    verify_all.add_argument(
        "--cache", default=None, metavar="DIR",
        help="shared on-disk verdict cache for the worker pool",
    )
    verify_all.add_argument(
        "--json", default=None, metavar="PATH",
        help="write per-instance timing records (and the metrics report) to PATH",
    )
    _add_observability_flags(verify_all)
    verify_all.set_defaults(handler=_command_verify_all)

    lint = commands.add_parser(
        "lint",
        help="statically check the paper's side conditions (no state space)",
    )
    lint.add_argument(
        "--case", action="append", default=None, metavar="NAME",
        help="restrict to this library case (repeatable); default: every case",
    )
    lint.add_argument(
        "--probes", type=int, default=32,
        help="sampled states used to probe opaque guards/statements",
    )
    lint.add_argument(
        "--strict", action="store_true",
        help="exit 1 on any finding, not just error-severity ones",
    )
    lint.add_argument(
        "--semantic", action=argparse.BooleanOptionalAction, default=True,
        help="run the abstract-interpretation (DF*) and interference "
        "(IF*) passes on top of the classic declaration checks",
    )
    lint.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable lint report to PATH",
    )
    _add_observability_flags(lint)
    lint.set_defaults(handler=_command_lint)

    simulate = commands.add_parser(
        "simulate", help="measure stabilization from random corruption"
    )
    simulate.add_argument("protocol")
    simulate.add_argument("--size", type=int, default=None)
    simulate.add_argument("--trials", type=int, default=20)
    simulate.add_argument("--max-steps", type=int, default=200_000)
    simulate.add_argument("--seed", type=int, default=0)
    _add_observability_flags(simulate)
    simulate.set_defaults(handler=_command_simulate)

    render = commands.add_parser(
        "render", help="print the paper-style program listing"
    )
    render.add_argument("protocol")
    render.add_argument("--size", type=int, default=None)
    render.set_defaults(handler=_command_render)

    serve = commands.add_parser(
        "serve",
        help="run the HTTP/JSON verification daemon (see docs/SERVICE.md)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="interface to bind (default: loopback only)",
    )
    serve.add_argument(
        "--port", type=int, default=8421,
        help="TCP port (0 = pick an ephemeral port)",
    )
    serve.add_argument(
        "--cache", default=None, metavar="DIR",
        help="persist verdicts in a sharded store under DIR "
        "(default: memory only)",
    )
    serve.add_argument(
        "--workers", type=int, default=2,
        help="process-pool width for batched verification misses",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.01, metavar="SECONDS",
        help="how long cache-missing requests are collected before one "
        "batch is dispatched to the pool",
    )
    serve.add_argument(
        "--max-batch", type=int, default=16, metavar="N",
        help="largest batch handed to the pool at once",
    )
    serve.add_argument(
        "--store-shards", type=int, default=16, metavar="N",
        help="bucket directories in the verdict store",
    )
    serve.add_argument(
        "--warm-capacity", type=int, default=128, metavar="N",
        help="decoded records kept in the store's in-memory LRU tier",
    )
    serve.add_argument(
        "--store-entries", type=int, default=None, metavar="N",
        help="evict least-recently-used verdicts beyond N entries",
    )
    serve.add_argument(
        "--store-bytes", type=int, default=None, metavar="BYTES",
        help="evict least-recently-used verdicts beyond this on-disk size",
    )
    _add_observability_flags(serve)
    serve.set_defaults(handler=_command_serve)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.handler(args)
    except BrokenPipeError:
        # stdout was closed early (e.g. piped into `head`); exit quietly.
        try:
            sys.stdout.close()
        except Exception:
            pass
        return 0


if __name__ == "__main__":
    sys.exit(main())
