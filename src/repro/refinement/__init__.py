"""Atomicity refinement (the paper's Section 8 future-work direction)."""

from repro.refinement.caching import cache_coherence, cache_var, refine_with_caches

__all__ = ["cache_coherence", "cache_var", "refine_with_caches"]
