"""Atomicity refinement by neighbor caching.

Section 8 of the paper: "one of the closure actions in the stabilizing
diffusing computation involves accessing the state of a node and all its
children nodes ... This action has high atomicity and may therefore be
unsuitable for a distributed implementation" — and the paper defers a
convergence-preserving refinement to a companion paper.

This module implements the classical *caching* refinement and exposes it
to the library's verification tools, so the convergence-preservation
question the paper raises can be answered mechanically per protocol:

- for every process ``p`` and every foreign variable ``v`` that ``p``'s
  actions read, introduce a cache variable ``p.cache(v)`` (same domain,
  owned by ``p``);
- add a low-atomicity *copy action* per (process, foreign variable):
  ``p.cache(v) != v  ->  p.cache(v) := v`` — it reads exactly one remote
  variable and writes exactly one local one;
- rewrite ``p``'s original actions to read the caches instead of the
  foreign variables (their write sets are unchanged).

Every refined action reads at most one non-local variable, the usual
read/write-atomicity model of distributed shared memory.

Whether the refinement preserves convergence is *not* claimed here —
that is precisely the nontrivial question. The refined program is a
plain :class:`~repro.core.program.Program`, so
:func:`repro.verification.check_tolerance` decides it exhaustively on
small instances, and the E11 benchmark records the answer per protocol
and fairness mode (notably: refined programs generally need weak
fairness, because an unfair daemon can starve the copy actions forever).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any, Hashable

from repro.core.actions import Action, Assignment
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.core.variables import Variable

__all__ = ["cache_var", "refine_with_caches", "cache_coherence"]


def cache_var(process: Hashable, variable: str) -> str:
    """The cache of ``variable`` held at ``process``."""
    return f"cache.{process}.{variable}"


class _ViewState(Mapping[str, Any]):
    """A read view of a state with some variable names redirected.

    Guards and right-hand sides of the original actions evaluate against
    this view, so reads of foreign variables transparently hit the
    process's caches instead.
    """

    __slots__ = ("_state", "_redirect")

    def __init__(self, state: State, redirect: Mapping[str, str]) -> None:
        self._state = state
        self._redirect = redirect

    def __getitem__(self, name: str) -> Any:
        return self._state[self._redirect.get(name, name)]

    def __iter__(self):
        return iter(self._state)

    def __len__(self) -> int:
        return len(self._state)


def refine_with_caches(
    program: Program,
    *,
    max_remote_processes: int = 0,
    name: str | None = None,
) -> Program:
    """The caching refinement of ``program``.

    Every variable must have an owning process (locality is otherwise
    undefined). Actions whose reads are already local are kept verbatim.

    Args:
        program: The high-atomicity program.
        max_remote_processes: Actions reading variables of at most this
            many remote processes are considered low-atomicity already
            and kept verbatim. ``0`` refines everything that touches any
            remote variable; ``1`` refines only actions that read *two or
            more* neighbors in one step — the paper's Section 8 notion of
            "high atomicity" (its example is the reflect action, which
            reads all children; the propagate action reads one parent and
            is fine).
        name: Optional name for the refined program.

    Returns:
        A new program over the original variables plus the caches, whose
        refined actions read only local variables.
    """
    owner = {}
    for variable in program.variables.values():
        if variable.process is None:
            raise ValueError(
                f"variable {variable.name!r} has no owning process; the "
                "caching refinement needs per-process locality"
            )
        owner[variable.name] = variable.process

    def foreign_reads(action: Action) -> set[str]:
        reads = {read for read in action.reads if owner[read] != action.process}
        remote_processes = {owner[read] for read in reads}
        if len(remote_processes) <= max_remote_processes:
            return set()
        return reads

    # Which (process, foreign variable) caches are needed?
    needed: dict[Hashable, set[str]] = {}
    for action in program.actions:
        if action.process is None:
            raise ValueError(
                f"action {action.name!r} has no owning process"
            )
        foreign = foreign_reads(action)
        if foreign:
            needed.setdefault(action.process, set()).update(foreign)

    variables: list[Variable] = list(program.variables.values())
    copy_actions: list[Action] = []
    for process in sorted(needed, key=str):
        for foreign in sorted(needed[process]):
            cname = cache_var(process, foreign)
            variables.append(
                Variable(cname, program.variables[foreign].domain, process=process)
            )
            copy_actions.append(
                Action(
                    f"copy.{process}.{foreign}",
                    Predicate(
                        lambda s, cname=cname, foreign=foreign: s[cname] != s[foreign],
                        name=f"{cname} != {foreign}",
                        support=(cname, foreign),
                    ),
                    Assignment({cname: lambda s, foreign=foreign: s[foreign]}),
                    reads=(cname, foreign),
                    process=process,
                )
            )

    refined_actions: list[Action] = []
    for action in program.actions:
        foreign = foreign_reads(action)
        if not foreign:
            refined_actions.append(action)
            continue
        redirect = {v: cache_var(action.process, v) for v in sorted(foreign)}
        original_guard = action.guard
        original_effect = action.effect

        def guard_fn(s: State, g=original_guard, redirect=redirect) -> bool:
            return g(_ViewState(s, redirect))  # type: ignore[arg-type]

        new_reads = (action.reads - foreign) | set(redirect.values())
        guard = Predicate(
            guard_fn,
            name=f"{original_guard.name} [cached]",
            support=new_reads if original_guard.support is not None else None,
        )
        effect = _rewritten_assignment(original_effect, redirect)
        refined_actions.append(
            Action(
                action.name,
                guard,
                effect,
                reads=new_reads,
                process=action.process,
            )
        )

    return Program(
        name if name is not None else f"{program.name}+caches",
        variables,
        refined_actions + copy_actions,
    )


def _rewritten_assignment(effect: Assignment, redirect: Mapping[str, str]) -> Assignment:
    """An assignment whose right-hand sides read through the redirect view."""
    updates: dict[str, Any] = {}
    for target in effect.writes:
        updates[target] = _make_rhs(effect, target, redirect)
    return Assignment(updates)


def _make_rhs(effect: Assignment, target: str, redirect: Mapping[str, str]):
    def rhs(s: State) -> Any:
        view = _ViewState(s, redirect)
        # Evaluate the whole original assignment against the view, then
        # project the one target. Assignment semantics are simultaneous,
        # so per-target evaluation against the same view is faithful.
        evaluated = effect.evaluate(view)  # type: ignore[arg-type]
        return evaluated[target]

    return rhs


def cache_coherence(program: Program, refined: Program) -> Predicate:
    """The predicate "every cache equals its source variable".

    Useful as an intermediate predicate in convergence stairs over the
    refined program, and as the refinement relation between refined and
    original states.
    """
    pairs = []
    for name in refined.variables:
        if name.startswith("cache."):
            _, process, source = name.split(".", 2)
            pairs.append((name, source))

    return Predicate(
        lambda s: all(s[cache] == s[source] for cache, source in pairs),
        name="caches coherent",
        support=[n for pair in pairs for n in pair],
    )
