"""Convenience fault constructors.

Builders for the fault patterns the experiments use repeatedly: corrupt
the whole state, corrupt a random subset of processes, or apply a
protocol-specific perturbation.
"""

from __future__ import annotations

import random
from collections.abc import Sequence
from typing import Hashable

from repro.core.program import Program
from repro.core.state import State
from repro.faults.model import Fault, LambdaFault, ProcessCorruption, TransientCorruption

__all__ = [
    "corrupt_everything",
    "corrupt_variables",
    "corrupt_processes",
    "corrupt_random_processes",
]


def corrupt_everything(program: Program) -> Fault:
    """A fault that randomizes the entire program state.

    This is the strongest transient fault — the one stabilizing programs
    (fault-span ``T = true``) are designed to tolerate.
    """
    return TransientCorruption(
        program.variables.values(), name="corrupt-everything"
    )


def corrupt_variables(program: Program, names: Sequence[str]) -> Fault:
    """A fault that randomizes the named variables."""
    return TransientCorruption([program.variables[name] for name in names])


def corrupt_processes(program: Program, processes: Sequence[Hashable]) -> list[Fault]:
    """One :class:`ProcessCorruption` fault per listed process."""
    return [ProcessCorruption(program, process) for process in processes]


def corrupt_random_processes(program: Program, count: int) -> Fault:
    """A fault that corrupts ``count`` processes chosen anew at each firing."""
    processes = program.processes()
    if count < 1 or count > len(processes):
        raise ValueError(
            f"count must be between 1 and {len(processes)}, got {count}"
        )
    by_process: dict[Hashable, list] = {}
    for variable in program.variables.values():
        if variable.process is not None:
            by_process.setdefault(variable.process, []).append(variable)

    def strike(state: State, rng: random.Random) -> State:
        victims = rng.sample(processes, count)
        changes = {}
        for process in victims:
            for variable in by_process[process]:
                changes[variable.name] = variable.domain.sample(rng)
        return state.update(changes)

    return LambdaFault(f"corrupt-{count}-random-processes", strike)
