"""Fault scenarios: when faults strike during a run.

A scenario decides, for each step of a simulation, which faults (if any)
to apply before the program takes its step. Three shapes cover the
experiments:

- :class:`ScheduledFaults` — a fixed map from step indices to faults, for
  controlled "inject at step k, watch recovery" experiments.
- :class:`ProbabilisticFaults` — each step, each registered fault fires
  independently with a given rate, modeling a background fault process.
- :class:`NoFaults` — the fault-free baseline.

Scenarios are stateless with respect to randomness: the engine passes its
seeded RNG in, keeping the whole run reproducible from one seed.
"""

from __future__ import annotations

import random
from collections.abc import Iterable, Mapping, Sequence

from repro.faults.model import Fault

__all__ = ["FaultScenario", "NoFaults", "ScheduledFaults", "ProbabilisticFaults"]


class FaultScenario:
    """Base class: yields the faults to apply at a given step index."""

    def faults_for_step(self, step: int, rng: random.Random) -> Sequence[Fault]:
        raise NotImplementedError

    def last_scheduled_step(self) -> int | None:
        """The last step at which a fault can fire, when known.

        Metrics use this to measure recovery time from the final fault;
        probabilistic scenarios return ``None``.
        """
        return None


class NoFaults(FaultScenario):
    """The fault-free baseline scenario."""

    def faults_for_step(self, step: int, rng: random.Random) -> Sequence[Fault]:
        return ()

    def last_scheduled_step(self) -> int | None:
        return -1


class ScheduledFaults(FaultScenario):
    """Faults injected at fixed step indices.

    Args:
        schedule: Map from step index to the fault(s) applied just before
            the program's step at that index.
    """

    def __init__(self, schedule: Mapping[int, Fault | Iterable[Fault]]) -> None:
        normalized: dict[int, tuple[Fault, ...]] = {}
        for step, entry in schedule.items():
            if isinstance(entry, Fault):
                normalized[step] = (entry,)
            else:
                normalized[step] = tuple(entry)
        self._schedule = normalized

    def faults_for_step(self, step: int, rng: random.Random) -> Sequence[Fault]:
        return self._schedule.get(step, ())

    def last_scheduled_step(self) -> int | None:
        return max(self._schedule, default=-1)


class ProbabilisticFaults(FaultScenario):
    """Each registered fault fires independently with probability ``rate``
    at every step, optionally only until ``until_step``."""

    def __init__(
        self,
        faults: Iterable[Fault],
        rate: float,
        *,
        until_step: int | None = None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be a probability")
        self.faults = tuple(faults)
        self.rate = rate
        self.until_step = until_step

    def faults_for_step(self, step: int, rng: random.Random) -> Sequence[Fault]:
        if self.until_step is not None and step > self.until_step:
            return ()
        return tuple(fault for fault in self.faults if rng.random() < self.rate)

    def last_scheduled_step(self) -> int | None:
        return self.until_step
