"""Faults as state-changing actions (the paper's Section 3 view)."""

from repro.faults.injectors import (
    corrupt_everything,
    corrupt_processes,
    corrupt_random_processes,
    corrupt_variables,
)
from repro.faults.model import (
    Fault,
    LambdaFault,
    ProcessCorruption,
    TransientCorruption,
)
from repro.faults.scenarios import (
    FaultScenario,
    NoFaults,
    ProbabilisticFaults,
    ScheduledFaults,
)

__all__ = [
    "Fault",
    "FaultScenario",
    "LambdaFault",
    "NoFaults",
    "ProbabilisticFaults",
    "ProcessCorruption",
    "ScheduledFaults",
    "TransientCorruption",
    "corrupt_everything",
    "corrupt_processes",
    "corrupt_random_processes",
    "corrupt_variables",
]
