"""Fault model.

The paper (Section 3) adopts the view that *all classes of faults can be
represented as actions that change the program state*. A :class:`Fault`
is therefore a state transformer like an action, except that it is not
required to preserve the invariant — only the fault-span ``T`` is closed
under program actions *and* fault actions.

Concrete fault classes:

- :class:`TransientCorruption` — sets chosen variables to random values
  from their domains, the fault class of the paper's stabilizing designs
  ("faults that arbitrarily corrupt the state of any number of nodes").
- :class:`ProcessCorruption` — corrupts every variable owned by one
  process (a crash-and-arbitrary-recovery of one node).
- :class:`LambdaFault` — an arbitrary named transformer, for modeling
  protocol-specific faults such as "a node spontaneously becomes
  privileged" in the token ring (which is a specific corruption of
  ``x``-values).
"""

from __future__ import annotations

import random
from collections.abc import Callable, Iterable
from typing import Hashable

from repro.core.program import Program
from repro.core.state import State
from repro.core.variables import Variable

__all__ = [
    "Fault",
    "TransientCorruption",
    "ProcessCorruption",
    "LambdaFault",
]


class Fault:
    """Base class: a named, possibly randomized state transformer."""

    def __init__(self, name: str) -> None:
        self.name = name

    def apply(self, state: State, rng: random.Random) -> State:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class TransientCorruption(Fault):
    """Set each of the given variables to a random value from its domain."""

    def __init__(self, variables: Iterable[Variable], *, name: str | None = None) -> None:
        self.variables = tuple(variables)
        if not self.variables:
            raise ValueError("a corruption fault must target at least one variable")
        display = name if name is not None else (
            f"corrupt({', '.join(v.name for v in self.variables)})"
        )
        super().__init__(display)

    def apply(self, state: State, rng: random.Random) -> State:
        return state.update(
            {variable.name: variable.domain.sample(rng) for variable in self.variables}
        )


class ProcessCorruption(TransientCorruption):
    """Corrupt every variable owned by one process."""

    def __init__(self, program: Program, process: Hashable) -> None:
        owned = [
            variable
            for variable in program.variables.values()
            if variable.process == process
        ]
        if not owned:
            raise ValueError(f"process {process!r} owns no variables")
        super().__init__(owned, name=f"corrupt-process({process!r})")
        self.process = process


class LambdaFault(Fault):
    """A named arbitrary transformer ``fn(state, rng) -> state``."""

    def __init__(self, name: str, fn: Callable[[State, random.Random], State]) -> None:
        super().__init__(name)
        self._fn = fn

    def apply(self, state: State, rng: random.Random) -> State:
        return self._fn(state, rng)
