"""Result analysis: statistics, exact Markov analysis, tables, DOT export."""

from repro.analysis.dot import constraint_graph_dot, transition_system_dot
from repro.analysis.markov import HittingTimes, expected_convergence_steps
from repro.analysis.stats import Summary, percentile, summarize
from repro.analysis.tables import print_table, render_table

__all__ = [
    "HittingTimes",
    "Summary",
    "constraint_graph_dot",
    "expected_convergence_steps",
    "percentile",
    "print_table",
    "render_table",
    "summarize",
    "transition_system_dot",
]
