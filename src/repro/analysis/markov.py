"""Exact stabilization-time analysis via the random-daemon Markov chain.

Under the seeded random daemon, a program on a finite instance is a
Markov chain: at each non-target state one enabled action is chosen
uniformly. Convergence time to the (closed) target is then an absorbing
hitting time with an exact solution:

    E[s] = 0                                   if target(s)
    E[s] = 1 + (1/|enabled(s)|) * sum E[s']    otherwise

This module computes the hitting times exactly (a dense linear solve via
numpy over the transient states) and reports per-state and aggregate
expectations — the *analytical* counterpart of what
:func:`repro.simulation.stabilization_trials` estimates by sampling.
Experiment E13 checks that the two agree, validating the simulator
against the model.

States that reach the target with probability < 1 (they can wander into
a region from which the target is unreachable, or deadlock outside it)
have infinite expected hitting time and are reported as ``math.inf``.
"""

from __future__ import annotations

import math
from collections.abc import Iterable
from dataclasses import dataclass

import numpy

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.verification.explorer import TransitionSystem, build_transition_system

__all__ = ["HittingTimes", "expected_convergence_steps"]


@dataclass(frozen=True)
class HittingTimes:
    """Exact expected steps-to-target per state, plus aggregates."""

    #: Expected steps from each state, aligned with ``system.states``.
    expectations: tuple[float, ...]
    #: Mean over every state of the instance (uniform random start).
    mean: float
    #: Worst start state's expectation.
    maximum: float
    system: TransitionSystem

    def expectation_of(self, state: State) -> float:
        return self.expectations[self.system.index_of(state)]

    @property
    def all_finite(self) -> bool:
        return all(not math.isinf(v) for v in self.expectations)


def expected_convergence_steps(
    program: Program,
    states: Iterable[State],
    target: Predicate,
    *,
    system: TransitionSystem | None = None,
) -> HittingTimes:
    """Solve the random-daemon hitting-time system exactly.

    Args:
        program: The program (its transition graph defines the chain).
        states: A closed finite state set (typically the full space).
        target: The closed target predicate (``S``).
        system: Optional prebuilt transition system to share work.

    Raises:
        ValueError: if the supplied state set is not closed.
    """
    ts = system if system is not None else build_transition_system(program, states)
    if ts.escapes:
        raise ValueError("the state set is not closed under the program")

    n = len(ts)
    is_target = numpy.array([target(state) for state in ts.states], dtype=bool)

    predecessors: list[list[int]] = [[] for _ in range(n)]
    for source in range(n):
        if is_target[source]:
            continue  # target states are absorbing for the hitting time
        for _, destination in ts.edges[source]:
            predecessors[destination].append(source)

    # 1. Which states reach the target at all (through non-target paths)?
    reaches = is_target.copy()
    frontier = [i for i in range(n) if is_target[i]]
    while frontier:
        node = frontier.pop()
        for back in predecessors[node]:
            if not reaches[back]:
                reaches[back] = True
                frontier.append(back)

    # 2. Which states can wander (without first being absorbed) into a
    #    non-reaching state? Their hitting time is infinite.
    doomed = ~reaches
    frontier = [i for i in range(n) if doomed[i]]
    while frontier:
        node = frontier.pop()
        for back in predecessors[node]:
            if not doomed[back] and not is_target[back]:
                doomed[back] = True
                frontier.append(back)

    transient = [
        i for i in range(n) if not is_target[i] and not doomed[i]
    ]
    position = {state_index: k for k, state_index in enumerate(transient)}

    values = numpy.zeros(n)
    values[doomed] = math.inf

    if transient:
        m = len(transient)
        matrix = numpy.eye(m)
        rhs = numpy.ones(m)
        for k, state_index in enumerate(transient):
            edges = ts.edges[state_index]
            weight = 1.0 / len(edges)
            for _, destination in edges:
                if destination in position:
                    matrix[k, position[destination]] -= weight
                # Destinations in the target contribute 0; doomed
                # destinations are impossible here by construction.
        solution = numpy.linalg.solve(matrix, rhs)
        for k, state_index in enumerate(transient):
            values[state_index] = solution[k]

    expectations = tuple(float(v) for v in values)
    has_inf = bool(numpy.isinf(values).any())
    return HittingTimes(
        expectations=expectations,
        mean=math.inf if has_inf else float(values.mean()),
        maximum=float(values.max()) if n else 0.0,
        system=ts,
    )
