"""Deprecated home of the exact convergence-time analysis.

The dense hitting-time solver that used to live here grew into
:mod:`repro.quantitative`, which solves the same absorbing-chain system
by CSR-native value iteration (no dense matrix, no hard numpy
dependency) and adds the fault-rate-weighted and adversarial variants
plus the masking-distance score. This module remains as a deprecation
shim:

- :class:`HittingTimes` is re-exported from its new home unchanged.
- :func:`expected_convergence_steps` delegates to
  :func:`repro.quantitative.hitting_times` after a single
  :class:`DeprecationWarning` (Python deduplicates it per call site),
  returning the same ``HittingTimes`` with identical ``math.inf``
  semantics and the same ``ValueError`` on a non-closed state set.

Unlike its predecessor this module imports cleanly without numpy: the
quantitative layer follows the kernel's ``HAVE_NUMPY`` gating and runs
a bit-compatible pure-Python fallback when numpy is absent.
"""

from __future__ import annotations

import warnings
from collections.abc import Iterable
from typing import Any

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.quantitative import HittingTimes

__all__ = ["HittingTimes", "expected_convergence_steps"]


def expected_convergence_steps(
    program: Program,
    states: Iterable[State],
    target: Predicate,
    *,
    system: Any = None,
) -> HittingTimes:
    """Deprecated: use :func:`repro.quantitative.hitting_times`.

    Same model and result type; the replacement solves the chain by
    sparse value iteration instead of a dense ``numpy.linalg`` solve.
    """
    warnings.warn(
        "expected_convergence_steps() is deprecated; use "
        "repro.quantitative.hitting_times() (see docs/QUANTITATIVE.md)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.quantitative import hitting_times

    return hitting_times(program, states, target, system=system)
