"""Summary statistics for experiment results.

Small, dependency-free helpers: the experiments report means, medians,
percentiles and maxima over replicated trials.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

__all__ = ["percentile", "Summary", "summarize"]


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) with linear interpolation."""
    if not values:
        raise ValueError("cannot take a percentile of no values")
    if not 0.0 <= q <= 100.0:
        raise ValueError("q must be between 0 and 100")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return float(ordered[low])
    weight = rank - low
    return float(ordered[low] * (1.0 - weight) + ordered[high] * weight)


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    count: int
    mean: float
    median: float
    p95: float
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.1f} median={self.median:.1f} "
            f"p95={self.p95:.1f} max={self.maximum:.0f}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summarize a nonempty sample."""
    if not values:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        count=len(values),
        mean=sum(values) / len(values),
        median=percentile(values, 50.0),
        p95=percentile(values, 95.0),
        minimum=float(min(values)),
        maximum=float(max(values)),
    )
