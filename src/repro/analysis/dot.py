"""Graphviz DOT exporters.

Render constraint graphs and (small) transition systems as DOT text for
inspection with any Graphviz viewer. Pure text generation — no Graphviz
dependency; the output is also stable, so tests can assert on it.
"""

from __future__ import annotations

from repro.core.constraint_graph import ConstraintGraph
from repro.core.predicates import Predicate
from repro.verification.explorer import TransitionSystem

__all__ = ["constraint_graph_dot", "transition_system_dot"]


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace('"', '\\"')
    return f'"{escaped}"'


def constraint_graph_dot(graph: ConstraintGraph, *, title: str = "constraints") -> str:
    """Render a constraint graph.

    Nodes are labeled with their name and variable set; each edge with
    its constraint name. The graph's classification is included as a
    caption, so a rendered figure is self-describing.
    """
    lines = [f"digraph {_quote(title)} {{"]
    lines.append(f"  label={_quote(f'{title} [{graph.classification()}]')};")
    lines.append("  rankdir=LR;")
    lines.append("  node [shape=box, fontname=monospace];")
    for node in graph.nodes:
        variables = ", ".join(sorted(node.variables))
        lines.append(
            f"  {_quote(node.name)} [label={_quote(f'{node.name}|{variables}')}];"
        )
    for edge in graph.edges:
        lines.append(
            f"  {_quote(edge.source.name)} -> {_quote(edge.target.name)} "
            f"[label={_quote(edge.binding.constraint.name)}];"
        )
    lines.append("}")
    return "\n".join(lines)


def transition_system_dot(
    system: TransitionSystem,
    *,
    highlight: Predicate | None = None,
    title: str = "transitions",
    max_states: int = 200,
) -> str:
    """Render a transition system; states satisfying ``highlight`` (the
    invariant, typically) are drawn filled.

    Raises:
        ValueError: if the system exceeds ``max_states`` (DOT renderings
            beyond a couple hundred nodes are unreadable; raise early).
    """
    if len(system) > max_states:
        raise ValueError(
            f"transition system has {len(system)} states; refusing to render "
            f"more than {max_states}"
        )
    lines = [f"digraph {_quote(title)} {{"]
    lines.append("  node [shape=ellipse, fontname=monospace, fontsize=9];")
    for index, state in enumerate(system.states):
        label = ",".join(f"{k}={state[k]}" for k in sorted(state))
        style = ""
        if highlight is not None and highlight(state):
            style = ", style=filled, fillcolor=lightgrey"
        lines.append(f"  s{index} [label={_quote(label)}{style}];")
    for index in range(len(system)):
        for action_name, destination in system.edges[index]:
            lines.append(
                f"  s{index} -> s{destination} [label={_quote(action_name)}];"
            )
    lines.append("}")
    return "\n".join(lines)
