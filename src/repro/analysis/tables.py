"""ASCII result tables.

The benchmark harness prints tables whose rows mirror EXPERIMENTS.md.
``render_table`` right-aligns numbers, left-aligns text, and keeps the
output stable so recorded results can be diffed across runs.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

__all__ = ["render_table", "print_table"]


def _format_cell(value: Any) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    text_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for position, cell in enumerate(row):
            widths[position] = max(widths[position], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for position, cell in enumerate(cells):
            parts.append(cell.ljust(widths[position]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(list(headers)))
    lines.append(render_row(["-" * width for width in widths]))
    lines.extend(render_row(row) for row in text_rows)
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    title: str | None = None,
) -> None:
    """Print :func:`render_table` output followed by a blank line."""
    print(render_table(headers, rows, title=title))
    print()
