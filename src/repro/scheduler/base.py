"""Scheduler interface.

The paper's computations (Section 2) are fair, maximal sequences of steps
in which some enabled action is executed at each step. The entity that
picks which enabled action runs is traditionally called the *daemon*.
Schedulers encapsulate that choice.

A scheduler's :meth:`Scheduler.advance` maps the current state to the next
state plus the actions executed in the step. Interleaving schedulers
execute exactly one action per step; the synchronous daemon executes one
action per process. Returning ``None`` signals a terminal state (no action
enabled), which ends a maximal finite computation.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import TYPE_CHECKING

from repro.core.actions import Action
from repro.core.program import Program
from repro.core.state import State

if TYPE_CHECKING:
    from repro.observability.tracer import Tracer

__all__ = ["Scheduler", "FirstEnabledScheduler"]


class Scheduler:
    """Base class for daemons.

    Subclasses usually override :meth:`select`; schedulers with
    non-interleaving semantics (the synchronous daemon) override
    :meth:`advance` directly.
    """

    #: Display name used in experiment reports.
    name = "scheduler"

    #: Optional tracer (see :meth:`attach_tracer`). ``None`` — the
    #: default — costs a single attribute check per step.
    tracer: Tracer | None = None

    def attach_tracer(self, tracer: Tracer | None) -> Scheduler:
        """Attach ``tracer`` (or detach with ``None``); returns ``self``.

        With a tracer attached, every step emits a ``scheduler.step``
        event naming the daemon, the number of enabled actions it chose
        among (daemons that probe guards lazily, like round-robin,
        report only what they examined), and the action(s) it executed.
        """
        self.tracer = tracer
        return self

    def emit_step(
        self, step: int, enabled_count: int, actions: Sequence[Action]
    ) -> None:
        """Emit the ``scheduler.step`` event for one executed step.

        Call sites guard with ``if self.tracer is not None`` so the
        un-traced path never reaches this method.
        """
        self.tracer.emit(
            "scheduler.step",
            scheduler=self.name,
            step=step,
            enabled=enabled_count,
            actions=tuple(action.name for action in actions),
        )

    def reset(self) -> None:
        """Clear any per-run state. Called once at the start of each run."""

    def select(self, state: State, enabled: Sequence[Action], step: int) -> Action:
        """Pick one of the ``enabled`` actions to execute.

        Only called with a nonempty ``enabled`` sequence.
        """
        raise NotImplementedError

    def advance(
        self, program: Program, state: State, step: int
    ) -> tuple[State, tuple[Action, ...]] | None:
        """Execute one step; ``None`` when no action is enabled."""
        enabled = program.enabled_actions(state)
        if not enabled:
            return None
        action = self.select(state, enabled, step)
        if self.tracer is not None:
            self.emit_step(step, len(enabled), (action,))
        return action.execute(state), (action,)


class FirstEnabledScheduler(Scheduler):
    """Always executes the first enabled action in program order.

    Deterministic and decidedly unfair — useful as a baseline and in the
    fairness-ablation experiments (Section 8 argues the paper's programs
    converge even without fairness).
    """

    name = "first-enabled"

    def select(self, state: State, enabled: Sequence[Action], step: int) -> Action:
        return enabled[0]
