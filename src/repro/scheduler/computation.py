"""Computation traces.

A :class:`Computation` records a finite prefix of a computation: the
initial state and the sequence of (actions, post-state) steps. It offers
the queries the experiments need — when a predicate first held, whether it
held over the recorded suffix, per-action execution counts — plus a
fairness audit that flags actions continuously enabled over the recorded
window yet never executed (the witness pattern of an unfair schedule).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

from repro.core.actions import Action
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State

__all__ = ["ComputationStep", "Computation"]


@dataclass(frozen=True)
class ComputationStep:
    """One step: the actions executed and the state they produced."""

    actions: tuple[Action, ...]
    state: State


@dataclass
class Computation:
    """A recorded (finite prefix of a) computation."""

    initial: State
    steps: list[ComputationStep] = field(default_factory=list)
    #: True when the run ended because no action was enabled, i.e. the
    #: recorded sequence is a *maximal* finite computation.
    terminated: bool = False

    def append(self, actions: Sequence[Action], state: State) -> None:
        self.steps.append(ComputationStep(tuple(actions), state))

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def final_state(self) -> State:
        return self.steps[-1].state if self.steps else self.initial

    def states(self) -> Iterator[State]:
        """All visited states, the initial state first."""
        yield self.initial
        for step in self.steps:
            yield step.state

    def state_at(self, index: int) -> State:
        """The state after ``index`` steps (index 0 is the initial state)."""
        if index == 0:
            return self.initial
        return self.steps[index - 1].state

    def first_index_where(self, predicate: Predicate) -> int | None:
        """The earliest state index at which ``predicate`` holds."""
        for index, state in enumerate(self.states()):
            if predicate(state):
                return index
        return None

    def eventually(self, predicate: Predicate) -> bool:
        return self.first_index_where(predicate) is not None

    def holds_from(self, predicate: Predicate, index: int) -> bool:
        """Whether ``predicate`` holds at every recorded state from ``index`` on."""
        for position, state in enumerate(self.states()):
            if position >= index and not predicate(state):
                return False
        return True

    def stabilization_index(self, predicate: Predicate) -> int | None:
        """The earliest index from which ``predicate`` holds for the rest
        of the recorded trace, or ``None`` if it never stabilizes.

        For a closed predicate this coincides with
        :meth:`first_index_where`; for a non-closed one it is the honest
        measurement (the paper's convergence is to a *closed* invariant).
        """
        last_violation = -1
        for position, state in enumerate(self.states()):
            if not predicate(state):
                last_violation = position
        candidate = last_violation + 1
        if candidate > len(self.steps):
            return None
        return candidate

    def action_counts(self) -> Counter[str]:
        """How many times each action name was executed."""
        counts: Counter[str] = Counter()
        for step in self.steps:
            for action in step.actions:
                counts[action.name] += 1
        return counts

    def executed_action_names(self) -> set[str]:
        return set(self.action_counts())

    def fairness_violations(self, program: Program) -> list[str]:
        """Actions enabled at *every* recorded state but never executed.

        Over an infinite computation this is exactly a weak-fairness
        violation; over a finite recorded window it is the standard audit
        heuristic, and an empty result on a long window is evidence (not
        proof) of fairness.
        """
        if self.terminated:
            return []
        executed = self.executed_action_names()
        suspects = []
        for action in program.actions:
            if action.name in executed:
                continue
            if all(action.enabled(state) for state in self.states()):
                suspects.append(action.name)
        return suspects

    def is_maximal(self, program: Program) -> bool:
        """Whether the trace is maximal: it either ended at a terminal
        state or was cut off while actions were still enabled (in which
        case only an infinite continuation could be maximal and we report
        ``False`` for the recorded prefix)."""
        if self.terminated:
            return program.is_terminal(self.final_state)
        return False
