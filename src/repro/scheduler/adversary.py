"""Adversarial scheduler.

Section 8 of the paper observes that its derived programs converge even
without the fairness assumption. The adversarial scheduler puts that to
the test: given the invariant ``S`` it tries, with one-step lookahead, to
keep the system outside ``S`` for as long as possible, and it makes no
fairness promise at all. If a program stabilizes under this daemon in
every experiment, the Section 8 remark holds empirically for it.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.actions import Action
from repro.core.predicates import Predicate
from repro.core.state import State
from repro.scheduler.base import Scheduler

__all__ = ["AdversarialScheduler"]


class AdversarialScheduler(Scheduler):
    """Greedy one-step-lookahead adversary against a target predicate.

    At each step it prefers an enabled action whose successor still
    violates ``avoid_target``; among equally bad choices it picks by a
    seeded RNG. Once every enabled action leads inside the target (the
    closure/convergence structure has cornered it), it concedes and picks
    randomly.
    """

    name = "adversarial"

    def __init__(self, avoid_target: Predicate, seed: int) -> None:
        self.avoid_target = avoid_target
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def select(self, state: State, enabled: Sequence[Action], step: int) -> Action:
        bad: list[Action] = []
        for action in enabled:
            successor = action.execute(state)
            if not self.avoid_target(successor):
                bad.append(action)
        pool = bad if bad else list(enabled)
        return self._rng.choice(pool)
