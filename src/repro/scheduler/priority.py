"""Priority scheduler.

Executes any enabled action from a designated high-priority class before
considering the rest; within each class it delegates to a base scheduler.

Motivation (refinement, Section 8): the caching refinement of
:mod:`repro.refinement.caching` is *not* convergence-preserving under an
arbitrary weakly fair daemon — stale caches can chase the protocol's own
updates forever, and the model checker exhibits such fair livelocks. But
under a daemon that prioritizes the copy actions, every protocol action
executes from a cache-coherent state, so runs of the refined program are
exactly runs of the original program with finite copy bursts interleaved
— convergence is inherited. This scheduler expresses that daemon.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from repro.core.actions import Action
from repro.core.program import Program
from repro.core.state import State
from repro.scheduler.base import Scheduler

__all__ = ["PriorityScheduler"]


class PriorityScheduler(Scheduler):
    """Run high-priority actions to quiescence before anything else.

    Args:
        is_priority: Predicate over action names selecting the
            high-priority class (e.g. ``lambda name: name.startswith("copy.")``).
        base: Scheduler used to choose within whichever class is active.
    """

    name = "priority"

    def __init__(self, is_priority: Callable[[str], bool], base: Scheduler) -> None:
        self._is_priority = is_priority
        self._base = base

    def reset(self) -> None:
        self._base.reset()

    def advance(
        self, program: Program, state: State, step: int
    ) -> tuple[State, tuple[Action, ...]] | None:
        enabled = program.enabled_actions(state)
        if not enabled:
            return None
        urgent = [action for action in enabled if self._is_priority(action.name)]
        pool: Iterable[Action] = urgent if urgent else enabled
        action = self._base.select(state, list(pool), step)
        if self.tracer is not None:
            self.emit_step(step, len(enabled), (action,))
        return action.execute(state), (action,)
