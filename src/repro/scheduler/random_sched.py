"""Seeded random scheduler.

Picks uniformly among the enabled actions at each step. With probability 1
this daemon is weakly fair over infinite runs (every continuously enabled
action is eventually chosen), making it the workhorse of the stabilization
experiments. Always seed it: experiments must be reproducible.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from repro.core.actions import Action
from repro.core.state import State
from repro.scheduler.base import Scheduler

__all__ = ["RandomScheduler"]


class RandomScheduler(Scheduler):
    """Uniformly random choice among enabled actions, from a fixed seed."""

    name = "random"

    def __init__(self, seed: int) -> None:
        self._seed = seed
        self._rng = random.Random(seed)

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def select(self, state: State, enabled: Sequence[Action], step: int) -> Action:
        return self._rng.choice(list(enabled))
