"""Weakly fair schedulers.

Two concrete fair daemons:

- :class:`RoundRobinScheduler` cycles through the program's actions in
  program order, executing the next enabled one. Any action continuously
  enabled is executed within one full cycle, so the schedule is weakly
  fair by construction; a full cycle is also the natural "round" unit of
  the stabilization-time metrics.
- :class:`QueueFairScheduler` keeps action names in a FIFO queue and
  executes the longest-waiting enabled action, a common fair-daemon
  implementation that additionally bounds individual waiting time.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence

from repro.core.actions import Action
from repro.core.program import Program
from repro.core.state import State
from repro.scheduler.base import Scheduler

__all__ = ["RoundRobinScheduler", "QueueFairScheduler"]


class RoundRobinScheduler(Scheduler):
    """Cycle through actions in program order, running the next enabled one."""

    name = "round-robin"

    def __init__(self) -> None:
        self._cursor = 0

    def reset(self) -> None:
        self._cursor = 0

    def advance(
        self, program: Program, state: State, step: int
    ) -> tuple[State, tuple[Action, ...]] | None:
        actions = program.actions
        for offset in range(len(actions)):
            index = (self._cursor + offset) % len(actions)
            action = actions[index]
            if action.enabled(state):
                self._cursor = (index + 1) % len(actions)
                if self.tracer is not None:
                    self.emit_step(step, 1, (action,))
                return action.execute(state), (action,)
        return None


class QueueFairScheduler(Scheduler):
    """Execute the longest-waiting enabled action (FIFO fairness)."""

    name = "queue-fair"

    def __init__(self) -> None:
        self._queue: deque[str] = deque()

    def reset(self) -> None:
        self._queue.clear()

    def select(self, state: State, enabled: Sequence[Action], step: int) -> Action:
        by_name = {action.name: action for action in enabled}
        for name in by_name:
            if name not in self._queue:
                self._queue.append(name)
        for name in list(self._queue):
            if name in by_name:
                self._queue.remove(name)
                self._queue.append(name)
                return by_name[name]
        raise AssertionError("select called with an empty enabled set")
