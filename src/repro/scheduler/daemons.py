"""Central, distributed and synchronous daemons.

The paper's model executes one enabled action per step under a *central
daemon*. Distributed implementations are often analyzed under stronger
daemons:

- :class:`SynchronousDaemon` — every process with an enabled action
  executes one action per step, all guards evaluated against the old
  state and all writes applied simultaneously. This matches the classic
  synchronous network model.
- :class:`DistributedDaemon` — a random nonempty subset of processes
  fires each step (the general asynchronous distributed daemon);
  with subset size forced to 1 it degenerates to a central daemon.

Both daemons require concurrent actions to write disjoint variable sets.
The paper's designs satisfy this by construction: each process writes
only its own variables.
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.core.actions import Action
from repro.core.errors import ValidationError
from repro.core.program import Program
from repro.core.state import State
from repro.scheduler.base import Scheduler

__all__ = ["SynchronousDaemon", "DistributedDaemon"]


def _merge_steps(state: State, chosen: list[Action]) -> State:
    """Apply several actions' effects simultaneously against ``state``."""
    written: set[str] = set()
    changes: dict[str, object] = {}
    for action in chosen:
        overlap = written & set(action.writes)
        if overlap:
            raise ValidationError(
                f"concurrent actions write the same variables {sorted(overlap)}; "
                "synchronous execution requires disjoint write sets"
            )
        written |= set(action.writes)
        successor = action.execute(state)
        for name in action.writes:
            changes[name] = successor[name]
    return state.update(changes)


def _group_by_process(enabled: list[Action]) -> dict[Hashable, list[Action]]:
    groups: dict[Hashable, list[Action]] = {}
    for action in enabled:
        key = action.process if action.process is not None else action.name
        groups.setdefault(key, []).append(action)
    return groups


class SynchronousDaemon(Scheduler):
    """All processes with enabled actions step simultaneously.

    When a process has several enabled actions, one is chosen — the first
    in program order by default, or randomly when a seed is given.
    """

    name = "synchronous"

    def __init__(self, seed: int | None = None) -> None:
        self._seed = seed
        self._rng = random.Random(seed) if seed is not None else None

    def reset(self) -> None:
        if self._seed is not None:
            self._rng = random.Random(self._seed)

    def advance(
        self, program: Program, state: State, step: int
    ) -> tuple[State, tuple[Action, ...]] | None:
        enabled = program.enabled_actions(state)
        if not enabled:
            return None
        chosen: list[Action] = []
        for _, actions in _group_by_process(enabled).items():
            if self._rng is not None and len(actions) > 1:
                chosen.append(self._rng.choice(actions))
            else:
                chosen.append(actions[0])
        if self.tracer is not None:
            self.emit_step(step, len(enabled), chosen)
        return _merge_steps(state, chosen), tuple(chosen)


class DistributedDaemon(Scheduler):
    """A random nonempty subset of processes steps simultaneously.

    Args:
        seed: RNG seed (required — runs must be reproducible).
        activation_probability: Chance each enabled process is included in
            the step; at least one is always included.
    """

    name = "distributed"

    def __init__(self, seed: int, activation_probability: float = 0.5) -> None:
        if not 0.0 < activation_probability <= 1.0:
            raise ValueError("activation_probability must be in (0, 1]")
        self._seed = seed
        self._rng = random.Random(seed)
        self.activation_probability = activation_probability

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def advance(
        self, program: Program, state: State, step: int
    ) -> tuple[State, tuple[Action, ...]] | None:
        enabled = program.enabled_actions(state)
        if not enabled:
            return None
        groups = _group_by_process(enabled)
        keys = list(groups)
        picked = [
            key for key in keys if self._rng.random() < self.activation_probability
        ]
        if not picked:
            picked = [self._rng.choice(keys)]
        chosen = [self._rng.choice(groups[key]) for key in picked]
        if self.tracer is not None:
            self.emit_step(step, len(enabled), chosen)
        return _merge_steps(state, chosen), tuple(chosen)
