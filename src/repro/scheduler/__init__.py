"""Schedulers (daemons) and computation traces."""

from repro.scheduler.adversary import AdversarialScheduler
from repro.scheduler.base import FirstEnabledScheduler, Scheduler
from repro.scheduler.computation import Computation, ComputationStep
from repro.scheduler.daemons import DistributedDaemon, SynchronousDaemon
from repro.scheduler.fairness import QueueFairScheduler, RoundRobinScheduler
from repro.scheduler.priority import PriorityScheduler
from repro.scheduler.random_sched import RandomScheduler

__all__ = [
    "AdversarialScheduler",
    "Computation",
    "ComputationStep",
    "DistributedDaemon",
    "FirstEnabledScheduler",
    "PriorityScheduler",
    "QueueFairScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "SynchronousDaemon",
]
