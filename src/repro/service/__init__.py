"""``repro.service`` — the documented service surface of the daemon.

The implementation lives with its collaborators (the verification
service, store and pool) in :mod:`repro.verification.server`; this
package is the stable import path the docs and operators use::

    from repro.service import VerificationDaemon, DaemonThread, serve

See ``docs/SERVICE.md`` for the endpoint reference.
"""

from repro.service.server import DaemonThread, VerificationDaemon, serve

__all__ = ["DaemonThread", "VerificationDaemon", "serve"]
