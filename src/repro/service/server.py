"""Alias module: the daemon implementation, under its service name.

``repro.service.server`` is the name the documentation uses for the
daemon; the code lives in :mod:`repro.verification.server` next to the
:class:`~repro.verification.service.VerificationService` and
:class:`~repro.verification.store.VerdictStore` it orchestrates.
"""

from repro.verification.server import (
    PROVENANCE_KEYS,
    DaemonThread,
    VerificationDaemon,
    serve,
)
from repro.verification.store import VerdictStore

__all__ = [
    "PROVENANCE_KEYS",
    "DaemonThread",
    "VerdictStore",
    "VerificationDaemon",
    "serve",
]
