"""Simulation engine.

Runs a program under a scheduler, optionally injecting faults, recording
the computation and stopping on one of three criteria: the step budget is
exhausted, no action is enabled (maximal finite computation), or — when a
target predicate is given with ``stop_on_target=True`` — the target holds.

Faults are applied *before* the program's step at their scheduled index,
matching the paper's model of faults as extra actions interleaved with
program actions.
"""

from __future__ import annotations

import random
from collections.abc import Mapping
from dataclasses import dataclass

from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.faults.scenarios import FaultScenario, NoFaults
from repro.observability import events as ev
from repro.observability.tracer import Tracer
from repro.scheduler.base import Scheduler
from repro.scheduler.computation import Computation

__all__ = ["RunResult", "run"]


@dataclass
class RunResult:
    """Everything a single run produced.

    Index semantics: ``target_index`` and ``stabilization_index`` are
    **trace-time indices** — positions in the sequence of *visited* states,
    where the initial state is index 0 and every fault event and every
    program step each contribute one state. They are identical whether or
    not the trace was recorded; they are valid indices into
    ``computation`` (via ``state_at``) only when the run was made with
    ``record_trace=True``. With ``record_trace=False`` the computation
    keeps at most the initial and final states, so the indices describe
    the full visited sequence, not the truncated recording.

    Attributes:
        computation: The recorded trace (initial state plus every step
            when ``record_trace=True``; at most the final state otherwise).
        steps: Number of program steps executed.
        terminated: True when the run ended at a terminal state.
        reached_target: True when the target predicate held at some
            visited state.
        target_index: The earliest trace-time index where the target held
            (``None`` when never).
        stabilization_index: The earliest trace-time index from which the
            target held for the rest of the visited sequence.
        fault_count: Number of fault events applied.
    """

    computation: Computation
    steps: int
    terminated: bool
    reached_target: bool
    target_index: int | None
    stabilization_index: int | None
    fault_count: int

    @property
    def stabilized(self) -> bool:
        return self.stabilization_index is not None


def run(
    program: Program,
    initial: State,
    scheduler: Scheduler,
    *,
    max_steps: int,
    target: Predicate | None = None,
    stop_on_target: bool = False,
    faults: FaultScenario | None = None,
    fault_rng: random.Random | None = None,
    record_trace: bool = True,
    tracer: Tracer | None = None,
    watch: Mapping[str, Predicate] | None = None,
) -> RunResult:
    """Execute one run.

    Args:
        program: The program to run.
        initial: The starting state.
        scheduler: The daemon choosing each step.
        max_steps: Step budget.
        target: Predicate whose first-satisfaction and stabilization are
            measured (typically the invariant ``S``).
        stop_on_target: Stop as soon as ``target`` holds. Correct as a
            stabilization-time measurement only when ``target`` is closed
            (the paper's ``S`` always is — closure is verified separately).
        faults: Fault scenario; defaults to no faults.
        fault_rng: RNG driving fault randomness; defaults to a fresh
            seeded RNG so that runs are reproducible by default.
        record_trace: Keep every intermediate state. Turn off for long
            measurement runs to save memory; first/stabilization indices
            are still tracked incrementally over the visited sequence
            (see :class:`RunResult` for the index semantics).
        tracer: Optional :class:`~repro.observability.Tracer`. When
            attached, the run emits structured events — ``run.start``,
            ``fault.injected``, ``action.fired``, ``target.established``
            / ``target.violated`` on every flip of ``target``, and
            ``run.finish`` (see ``docs/OBSERVABILITY.md``). With the
            default ``None`` no instrumentation executes beyond the
            ``is not None`` checks, and results are identical.
        watch: Optional named predicates (typically the invariant's
            constraints) observed at every visited state **when a tracer
            is attached**: each flip emits ``constraint.established`` or
            ``constraint.violated``. Ignored without a tracer — watching
            costs one predicate evaluation per watched name per state.
    """
    scenario = faults if faults is not None else NoFaults()
    rng = fault_rng if fault_rng is not None else random.Random(0)
    scheduler.reset()

    computation = Computation(initial=initial)
    state = initial
    fault_count = 0
    target_index: int | None = None
    last_violation = -1  # state index of the latest target violation
    state_index = 0

    target_holds: bool | None = None
    watched = dict(watch) if tracer is not None and watch else None
    watch_holds: dict[str, bool] = {}

    def trace_state(current: State, holds: bool | None) -> None:
        # Only called with a tracer attached: emits target/constraint
        # flips for the state at ``state_index``.
        nonlocal target_holds
        if holds is not None and holds != target_holds:
            kind = ev.TARGET_ESTABLISHED if holds else ev.TARGET_VIOLATED
            tracer.emit(kind, index=state_index)
            target_holds = holds
        if watched is not None:
            for name, predicate in watched.items():
                holding = bool(predicate(current))
                if holding != watch_holds.get(name):
                    kind = (
                        ev.CONSTRAINT_ESTABLISHED
                        if holding
                        else ev.CONSTRAINT_VIOLATED
                    )
                    tracer.emit(kind, constraint=name, index=state_index)
                    watch_holds[name] = holding

    def observe(current: State) -> None:
        nonlocal target_index, last_violation
        holds: bool | None = None
        if target is not None:
            holds = bool(target(current))
            if holds:
                if target_index is None:
                    target_index = state_index
            else:
                last_violation = state_index
        if tracer is not None:
            trace_state(current, holds)

    if tracer is not None:
        tracer.emit(
            ev.RUN_START,
            program=program.name,
            scheduler=scheduler.name,
            max_steps=max_steps,
        )
    observe(state)
    steps = 0
    terminated = False
    while steps < max_steps:
        if stop_on_target and target is not None and target(state):
            break
        for fault in scenario.faults_for_step(steps, rng):
            state = fault.apply(state, rng)
            fault_count += 1
            state_index += 1
            if record_trace:
                computation.append((), state)
            if tracer is not None:
                tracer.emit(
                    ev.FAULT_INJECTED,
                    step=steps,
                    index=state_index,
                    fault=fault.name,
                )
            observe(state)
        outcome = scheduler.advance(program, state, steps)
        if outcome is None:
            terminated = True
            computation.terminated = True
            break
        state, actions = outcome
        steps += 1
        state_index += 1
        if record_trace:
            computation.append(actions, state)
        if tracer is not None:
            tracer.emit(
                ev.ACTION_FIRED,
                step=steps,
                index=state_index,
                actions=tuple(action.name for action in actions),
            )
        observe(state)

    if not record_trace and computation.final_state != state:
        # Keep the final state so callers can inspect it — but only when
        # it is not already the trace's final state, so a zero-step run
        # (immediate termination, or a target that holds initially) does
        # not record a duplicate of the initial state.
        computation.append((), state)

    stabilization_index: int | None
    candidate = last_violation + 1
    if target is None:
        stabilization_index = None
    elif candidate <= state_index and target_index is not None:
        stabilization_index = max(candidate, 0)
    else:
        stabilization_index = None

    if tracer is not None:
        tracer.emit(
            ev.RUN_FINISH,
            steps=steps,
            faults=fault_count,
            terminated=terminated,
            reached_target=target_index is not None,
            target_index=target_index,
            stabilization_index=stabilization_index,
        )

    return RunResult(
        computation=computation,
        steps=steps,
        terminated=terminated,
        reached_target=target_index is not None,
        target_index=target_index,
        stabilization_index=stabilization_index,
        fault_count=fault_count,
    )
