"""Replicated stabilization experiments.

The experiments all share one shape: start a protocol from corrupted
states, run it under some daemon, and record how long it takes to
stabilize. :func:`stabilization_trials` packages that shape with seeding
discipline — every trial derives its scheduler seed, its initial state and
its fault randomness from one base seed, so a whole sweep is reproducible
from a single integer.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass

from repro.analysis.stats import Summary, summarize
from repro.core.predicates import Predicate
from repro.core.program import Program
from repro.core.state import State
from repro.observability.tracer import Tracer
from repro.scheduler.base import Scheduler
from repro.simulation.engine import RunResult, run
from repro.simulation.metrics import count_rounds

__all__ = ["TrialOutcome", "StabilizationStats", "stabilization_trials"]

SchedulerFactory = Callable[[int], Scheduler]
InitialFactory = Callable[[random.Random], State]


@dataclass(frozen=True)
class TrialOutcome:
    """One trial: its seed, the run result, and derived metrics."""

    seed: int
    result: RunResult
    rounds: int | None

    @property
    def stabilized(self) -> bool:
        return self.result.stabilized

    @property
    def steps_to_stabilize(self) -> int | None:
        return self.result.stabilization_index


@dataclass(frozen=True)
class StabilizationStats:
    """Aggregate over a batch of trials."""

    trials: tuple[TrialOutcome, ...]
    stabilized_count: int
    steps: Summary | None
    rounds: Summary | None

    @property
    def all_stabilized(self) -> bool:
        return self.stabilized_count == len(self.trials)

    @property
    def stabilization_rate(self) -> float:
        return self.stabilized_count / len(self.trials) if self.trials else 0.0


def stabilization_trials(
    program: Program,
    target: Predicate,
    scheduler_factory: SchedulerFactory,
    *,
    trials: int,
    max_steps: int,
    base_seed: int,
    initial_factory: InitialFactory | None = None,
    measure_rounds: bool = False,
    tracer: Tracer | None = None,
) -> StabilizationStats:
    """Run ``trials`` independent stabilization runs and aggregate them.

    Args:
        program: The (augmented) protocol program.
        target: The invariant ``S`` whose establishment is timed.
        scheduler_factory: Builds a fresh scheduler per trial from a seed.
        trials: Number of replications.
        max_steps: Per-trial step budget.
        base_seed: All per-trial seeds derive deterministically from this.
        initial_factory: Builds the corrupted initial state from a seeded
            RNG; defaults to a uniformly random state (the arbitrary
            transient fault of the paper's stabilizing designs).
        measure_rounds: Also compute the round count per trial (requires
            trace recording, noticeably slower on long runs).
        tracer: Optional tracer threaded into every trial's
            :func:`~repro.simulation.engine.run`; trials are delimited
            by their ``run.start`` / ``run.finish`` event pairs.
    """
    outcomes: list[TrialOutcome] = []
    for trial_index in range(trials):
        seed = base_seed * 1_000_003 + trial_index
        # Derive independent streams for the initial corruption and the
        # scheduler: sharing one seed correlates the corrupted state with
        # the subsequent schedule and biases stabilization-time estimates.
        master = random.Random(seed)
        initial_seed = master.randrange(2**63)
        scheduler_seed = master.randrange(2**63)
        rng = random.Random(initial_seed)
        if initial_factory is not None:
            initial = initial_factory(rng)
        else:
            initial = program.random_state(rng)
        scheduler = scheduler_factory(scheduler_seed)
        result = run(
            program,
            initial,
            scheduler,
            max_steps=max_steps,
            target=target,
            stop_on_target=True,
            record_trace=measure_rounds,
            tracer=tracer,
        )
        rounds = (
            count_rounds(result.computation, program) if measure_rounds else None
        )
        outcomes.append(TrialOutcome(seed=seed, result=result, rounds=rounds))

    stabilized = [o for o in outcomes if o.stabilized]
    steps_sample = [float(o.steps_to_stabilize) for o in stabilized
                    if o.steps_to_stabilize is not None]
    rounds_sample = [float(o.rounds) for o in stabilized if o.rounds is not None]
    return StabilizationStats(
        trials=tuple(outcomes),
        stabilized_count=len(stabilized),
        steps=summarize(steps_sample) if steps_sample else None,
        rounds=summarize(rounds_sample) if rounds_sample else None,
    )
