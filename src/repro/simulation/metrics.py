"""Stabilization metrics.

Step counts come straight from :class:`~repro.simulation.engine.RunResult`;
this module adds the *round* measure customary in the self-stabilization
literature and per-action work accounting.

A **round** is a minimal segment of the computation in which every action
that was enabled at the segment's start has either executed or become
disabled. Rounds normalize stabilization time across daemons with very
different raw step interleavings.
"""

from __future__ import annotations

from collections import Counter

from repro.core.program import Program
from repro.scheduler.computation import Computation

__all__ = ["count_rounds", "convergence_action_work"]


def count_rounds(computation: Computation, program: Program) -> int:
    """The number of complete rounds in the recorded computation."""
    states = list(computation.states())
    if len(states) <= 1:
        return 0
    pending = {
        action.name for action in program.actions if action.enabled(states[0])
    }
    rounds = 0
    for position, step in enumerate(computation.steps):
        post_state = step.state
        for action in step.actions:
            pending.discard(action.name)
        still_pending = set()
        for name in pending:
            if program.action(name).enabled(post_state):
                still_pending.add(name)
        pending = still_pending
        if not pending:
            rounds += 1
            pending = {
                action.name
                for action in program.actions
                if action.enabled(post_state)
            }
            if not pending:
                break
    return rounds


def convergence_action_work(
    computation: Computation,
    convergence_action_names: set[str],
) -> tuple[int, int]:
    """Split executed steps into (convergence executions, closure executions).

    The paper's proofs bound how often convergence actions run; this
    measures it. Merged actions count as convergence work, matching the
    paper's final program listings where the merged action carries the
    convergence role.
    """
    counts: Counter[str] = Counter()
    for step in computation.steps:
        for action in step.actions:
            counts[action.name] += 1
    convergence = sum(
        count for name, count in counts.items() if name in convergence_action_names
    )
    closure = sum(
        count for name, count in counts.items() if name not in convergence_action_names
    )
    return convergence, closure
