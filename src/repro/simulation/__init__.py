"""Simulation: run loops, stabilization metrics, replicated experiments."""

from repro.simulation.engine import RunResult, run
from repro.simulation.experiment import (
    StabilizationStats,
    TrialOutcome,
    stabilization_trials,
)
from repro.simulation.metrics import convergence_action_work, count_rounds

__all__ = [
    "RunResult",
    "StabilizationStats",
    "TrialOutcome",
    "convergence_action_work",
    "count_rounds",
    "run",
    "stabilization_trials",
]
