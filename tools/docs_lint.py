"""Documentation link lint: dead relative links fail the build.

Two checks over every tracked Markdown file:

1. **Resolution** — every relative Markdown link target
   (``[text](path)``, optionally with a ``#fragment``) must exist on
   disk, and an explicit ``path#fragment`` into a Markdown file must
   name a real heading anchor in that file.
2. **Reachability** — every file under ``docs/`` must be linked from
   ``docs/INDEX.md``, so the index stays the complete map of the
   documentation surface.

External links (``http(s)://``, ``mailto:``) are out of scope — this
lint must pass offline. Bare-fragment links (``#section``) are checked
against the current file's own headings.

Usage (the CI ``docs-lint`` step)::

    python tools/docs_lint.py            # lint the repository
    python tools/docs_lint.py --root DIR # lint another tree
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: ``[text](target)`` — target captured up to the closing paren;
#: images (``![alt](...)``) match too, which is intended.
_LINK = re.compile(r"\[[^\]^\[]*\]\(([^)\s]+)\)")
#: Fenced code blocks are stripped before link extraction — snippets
#: routinely contain ``dict[str](...)``-shaped text that is not a link.
_FENCE = re.compile(r"^(```|~~~)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")


def _anchor(heading: str) -> str:
    """GitHub's heading → anchor slug (the subset these docs use)."""
    text = heading.strip().lower()
    text = re.sub(r"[`*_]", "", text)
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _markdown_files(root: Path) -> list[Path]:
    skipped = {".git", "node_modules", "__pycache__", ".pytest_cache"}
    return sorted(
        path
        for path in root.rglob("*.md")
        if not (set(path.relative_to(root).parts[:-1]) & skipped)
    )


def _links_and_anchors(path: Path) -> tuple[list[str], set[str]]:
    links: list[str] = []
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    in_fence = False
    for line in path.read_text(encoding="utf-8").splitlines():
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        heading = _HEADING.match(line)
        if heading:
            # GitHub disambiguates repeated headings by suffixing -1,
            # -2, ... in document order; accept the same spellings.
            slug = _anchor(heading.group(1))
            seen = counts.get(slug, 0)
            anchors.add(slug if seen == 0 else f"{slug}-{seen}")
            counts[slug] = seen + 1
        links.extend(_LINK.findall(line))
    return links, anchors


def lint(root: Path) -> list[str]:
    files = _markdown_files(root)
    parsed = {path: _links_and_anchors(path) for path in files}
    problems: list[str] = []

    for path, (links, own_anchors) in parsed.items():
        rel = path.relative_to(root)
        for target in links:
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            base, _, fragment = target.partition("#")
            if not base:
                if fragment and _anchor(fragment) not in own_anchors:
                    problems.append(f"{rel}: dead self-anchor '#{fragment}'")
                continue
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                problems.append(f"{rel}: dead link '{target}'")
                continue
            if fragment and resolved.suffix == ".md":
                target_anchors = parsed.get(resolved)
                if target_anchors is None:
                    target_anchors = _links_and_anchors(resolved)
                if _anchor(fragment) not in target_anchors[1]:
                    problems.append(
                        f"{rel}: link '{target}' names a missing anchor"
                    )

    index = root / "docs" / "INDEX.md"
    if index.exists():
        linked = {
            (index.parent / link.partition("#")[0]).resolve()
            for link, in ((t,) for t in parsed[index][0])
            if not link.startswith(("http://", "https://", "mailto:", "#"))
        }
        for path in files:
            if path.parent == root / "docs" and path != index:
                if path.resolve() not in linked:
                    problems.append(
                        f"docs/INDEX.md: does not link docs/{path.name}"
                    )
    else:
        problems.append("docs/INDEX.md: missing (the index is mandatory)")

    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parent.parent,
        help="repository root to lint (default: this checkout)",
    )
    arguments = parser.parse_args(argv)
    root = arguments.root.resolve()
    problems = lint(root)
    for problem in problems:
        print(f"docs-lint: {problem}", file=sys.stderr)
    checked = len(_markdown_files(root))
    if problems:
        print(
            f"docs-lint: {len(problems)} problem(s) in {checked} files",
            file=sys.stderr,
        )
        return 1
    print(f"docs-lint: {checked} Markdown files ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
