"""Quickstart: design, validate and run a stabilizing diffusing computation.

This walks the paper's Section 5.1 end to end:

1. build the candidate triple (closure actions + invariant + constraints)
   and the convergence actions for a rooted tree;
2. machine-check Theorem 1's sufficient conditions (the constraint graph
   is the tree, an out-tree);
3. independently verify T-tolerance by exhaustive model checking;
4. simulate: run fault-free waves, corrupt the whole state, and watch the
   program converge back to the invariant.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import random

import repro
from repro.faults import ScheduledFaults, corrupt_everything
from repro.protocols.diffusing import (
    all_green_state,
    build_diffusing_design,
    diffusing_invariant,
)
from repro.scheduler import RandomScheduler
from repro.simulation import run
from repro.topology import balanced_tree
from repro.verification import format_state


def main() -> None:
    # A balanced binary tree of 7 nodes, rooted at node 0.
    tree = balanced_tree(2, 2)
    print(f"tree: {tree!r}\n")

    # --- 1. The design -----------------------------------------------------
    design = build_diffusing_design(tree, variant="merged")
    print(f"design: {design!r}")
    print(f"constraint graph: {design.graph!r}")
    print(f"deployed program: {design.program!r}\n")

    # --- 2. Theorem 1 certificate ------------------------------------------
    states = list(design.program.state_space())
    report = design.validate(states)
    print(report.selected.describe())
    assert report.ok
    print()

    # --- 3. Independent model check ----------------------------------------
    invariant = diffusing_invariant(tree)
    tolerance = repro.verify(design.program, s=invariant, states=states)
    print(tolerance.describe())
    assert tolerance.ok
    print()

    # --- 4. Simulation with a mid-run catastrophic fault --------------------
    program = design.program
    initial = program.make_state(all_green_state(tree))
    result = run(
        program,
        initial,
        RandomScheduler(seed=42),
        max_steps=2000,
        target=invariant,
        faults=ScheduledFaults({500: corrupt_everything(program)}),
        fault_rng=random.Random(7),
    )
    print(f"simulated {result.steps} steps with {result.fault_count} injected fault(s)")
    print(f"stabilized: {result.stabilized} (from state index {result.stabilization_index})")
    corrupted = result.computation.state_at(501)
    print("state right after the fault:")
    print(format_state(corrupted))
    print("final state (legitimate again):")
    print(format_state(result.computation.final_state))
    assert result.stabilized


if __name__ == "__main__":
    main()
