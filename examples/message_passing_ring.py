"""The Section 7.1 reader exercise: a message-passing token ring.

The paper designs its token ring over shared variables and remarks that
"refinement of this program into one where the neighboring processes
communicate via message passing is left as an exercise to the reader".
This script runs the library's counter-flushing solution:

1. verify (exhaustively) that the message-passing ring is stabilizing;
2. watch the token hop channel by channel and the round counter advance;
3. kill the token mid-flight and watch the timeout regenerate it;
4. inject a duplicate token and watch the stale copy get absorbed.

Run:  python examples/message_passing_ring.py
"""

from __future__ import annotations

import random

import repro
from repro.faults import LambdaFault, ScheduledFaults
from repro.protocols.mp_token_ring import (
    build_mp_token_ring,
    channel_var,
    messages_in_flight,
    x_var,
)
from repro.scheduler import FirstEnabledScheduler, RandomScheduler
from repro.simulation import run
from repro.topology import Ring


def verify() -> None:
    program, spec = build_mp_token_ring(3, 4)
    report = repro.verify(program, s=spec, states=program.state_space())
    print("exhaustive verification (3 nodes, K=4):")
    print(report.describe())
    print()


def legitimate(program, n: int):
    values = {}
    for j in range(n):
        values[x_var(j)] = 1 if j == 0 else 0
        values[channel_var(j)] = 1 if j == 0 else None
    return program.make_state(values)


def circulation_demo() -> None:
    print("=== token circulation ===")
    n = 5
    program, _ = build_mp_token_ring(n, 7)
    ring = Ring(n)
    result = run(program, legitimate(program, n), FirstEnabledScheduler(), max_steps=14)
    for index, state in enumerate(result.computation.states()):
        flights = messages_in_flight(ring, state)
        position, value = flights[0]
        counters = " ".join(str(state[x_var(j)]) for j in range(n))
        print(f"  step {index:2d}: token({value}) in ch.{position}   x = [{counters}]")
    print()


def loss_demo() -> None:
    print("=== token loss and timeout regeneration ===")
    n = 5
    program, spec = build_mp_token_ring(n, 7)
    lose = LambdaFault(
        "lose-token",
        lambda s, rng: s.update({channel_var(j): None for j in range(n)}),
    )
    result = run(
        program,
        legitimate(program, n),
        RandomScheduler(3),
        max_steps=200,
        target=spec,
        faults=ScheduledFaults({8: lose}),
        fault_rng=random.Random(1),
    )
    timeouts = result.computation.action_counts().get("timeout.0", 0)
    print(f"  token destroyed at step 8; timeouts fired: {timeouts}")
    print(f"  legitimacy restored at state index {result.stabilization_index}")
    print()


def duplication_demo() -> None:
    print("=== duplicate token absorption ===")
    n = 5
    program, spec = build_mp_token_ring(n, 7)
    ring = Ring(n)
    duplicate = LambdaFault(
        "duplicate",
        lambda s, rng: s.update({channel_var(3): (s[x_var(0)] + 3) % 7}),
    )
    result = run(
        program,
        legitimate(program, n),
        RandomScheduler(4),
        max_steps=200,
        target=spec,
        faults=ScheduledFaults({1: duplicate}),
        fault_rng=random.Random(2),
    )
    worst = max(
        len(messages_in_flight(ring, state))
        for state in result.computation.states()
    )
    absorbs = sum(
        count
        for name, count in result.computation.action_counts().items()
        if name.startswith("absorb.") or name == "drop.0"
    )
    print(f"  messages in flight peaked at {worst}; stale copies absorbed: {absorbs}")
    print(f"  legitimacy restored at state index {result.stabilization_index}")


def main() -> None:
    verify()
    circulation_demo()
    loss_demo()
    duplication_demo()


if __name__ == "__main__":
    main()
