"""Design walkthrough: how the convergence statement shapes the outcome.

The paper's Sections 4 and 6 develop one tiny system — three integers
``x, y, z`` with invariant ``(x != y) and (x <= z)`` — under three
different choices of convergence actions:

- fix ``x = y`` by changing *y*, fix ``x > z`` by changing *z*
  -> out-tree constraint graph, Theorem 1 applies;
- fix both constraints by changing *x*, with the ``x = y`` repair
  *decreasing* x -> self-looping graph with a valid linear order,
  Theorem 2 applies;
- fix both by changing *x*, with the ``x = y`` repair *increasing* x
  -> no linear order, the theorems reject the design, and the model
  checker exhibits the infinite oscillation the paper warns about.

Run:  python examples/design_walkthrough.py
"""

from __future__ import annotations

from repro.core import State
from repro.protocols.three_constraint import (
    build_ordered_design,
    build_oscillating_design,
    build_out_tree_design,
    window_states,
    xyz_invariant,
)
from repro.scheduler import FirstEnabledScheduler
from repro.simulation import run
from repro.verification import (
    check_convergence,
    explore,
    format_computation,
    format_states,
)


def show(design, window) -> None:
    print(f"=== {design.name} ===")
    graph = design.graph
    print(f"constraint graph: {graph.classification()}")
    for edge in graph.edges:
        print(
            f"  {edge.source.name} -> {edge.target.name}"
            f"   [{edge.binding.constraint.name}: "
            f"{edge.binding.constraint.predicate.name}]"
        )
    report = design.validate(window)
    print(report.selected.describe())

    ts = explore(design.program, window)
    convergence = check_convergence(
        design.program, ts.states, xyz_invariant(), fairness="weak", system=ts
    )
    print(f"model check: {convergence.describe()}")
    if convergence.counterexample is not None:
        print(format_states(convergence.counterexample.states))
    print()


def main() -> None:
    window = window_states(3)

    show(build_out_tree_design(3), window)
    show(build_ordered_design(3), window)
    show(build_oscillating_design(3), window)

    # Watch the oscillation concretely, as the paper describes it:
    # "executing one can violate the constraint of the other, then
    # executing the other can violate the constraint of the one, and so on."
    print("=== the oscillation, step by step ===")
    bad = build_oscillating_design(3)
    trace = run(
        bad.program,
        State({"x": 0, "y": 0, "z": 0}),
        FirstEnabledScheduler(),
        max_steps=8,
    )
    print(format_computation(trace.computation))
    print()

    print("=== the ordered design from the same state quiesces ===")
    good = build_ordered_design(3)
    trace = run(
        good.program,
        State({"x": 0, "y": 0, "z": 0}),
        FirstEnabledScheduler(),
        max_steps=8,
    )
    print(format_computation(trace.computation))


if __name__ == "__main__":
    main()
