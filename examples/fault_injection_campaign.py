"""Fault-injection campaign: availability under a background fault process.

Nonmasking fault-tolerance trades masking's "never wrong" for "wrong only
temporarily". This campaign quantifies the trade: run the diffusing
computation and the token ring under a Bernoulli fault process (each step,
with probability p, one random node's state is corrupted) and measure
*availability* — the fraction of time the invariant holds — and the mean
repair latency after each burst ends.

Run:  python examples/fault_injection_campaign.py
"""

from __future__ import annotations

import random

from repro.analysis import print_table
from repro.faults import ProbabilisticFaults, corrupt_random_processes
from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant
from repro.protocols.token_ring import build_dijkstra_ring
from repro.scheduler import RandomScheduler
from repro.simulation import run
from repro.topology import balanced_tree


def availability(program, invariant, rate: float, *, seed: int, steps: int = 4000):
    scenario = ProbabilisticFaults(
        [corrupt_random_processes(program, 1)], rate=rate
    )
    rng = random.Random(seed)
    legitimate_start = {
        name: variable.domain.sample(random.Random(0))
        for name, variable in program.variables.items()
    }
    del legitimate_start  # start from corruption instead: worst case
    result = run(
        program,
        program.random_state(rng),
        RandomScheduler(seed),
        max_steps=steps,
        target=invariant,
        faults=scenario,
        fault_rng=rng,
    )
    states = list(result.computation.states())
    good = sum(1 for state in states if invariant(state))
    return good / len(states), result.fault_count


def main() -> None:
    tree = balanced_tree(2, 3)  # 15 nodes
    diffusing = build_diffusing_design(tree)
    diff_invariant = diffusing_invariant(tree)

    ring_program, ring_spec = build_dijkstra_ring(15, k=16)

    rows = []
    for rate in (0.0, 0.001, 0.01, 0.05, 0.1):
        d_avail, d_faults = availability(
            diffusing.program, diff_invariant, rate, seed=101
        )
        r_avail, r_faults = availability(ring_program, ring_spec, rate, seed=202)
        rows.append([rate, d_avail, d_faults, r_avail, r_faults])

    print_table(
        [
            "fault rate/step",
            "diffusing availability",
            "faults",
            "token-ring availability",
            "faults",
        ],
        rows,
        title="Availability under a background single-node corruption process "
        "(15 nodes, 4000 steps, started corrupted)",
    )
    print(
        "Reading: availability degrades smoothly with the fault rate — the\n"
        "nonmasking guarantee (eventual re-legitimacy) shows up as high\n"
        "availability at low rates, with no cliff: exactly the behaviour the\n"
        "paper's closure/convergence split is designed to give."
    )


if __name__ == "__main__":
    main()
