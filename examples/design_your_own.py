"""Tutorial: design your own nonmasking fault-tolerant protocol.

This walkthrough applies the paper's method, start to finish, to a
protocol that appears nowhere in the paper: **stabilizing minimum
propagation** on a rooted tree. Every node holds ``m.j``; the invariant
is that each node's value equals its parent's value combined with its
own fixed input — here, simply that every node agrees with the root's
fixed input (a broadcast of a measurement).

Steps (the Section 3 recipe):

1. declare the variables and the closure program (none needed — the task
   is silent, like the paper's x/y/z example);
2. write the invariant as one locally checkable constraint per node;
3. give each constraint a convergence action written with the expression
   DSL — read sets and guard names are inferred;
4. build the ``NonmaskingDesign``; its constraint graph comes out an
   out-tree, so Theorem 1 certifies convergence *with no proof work*;
5. cross-check with the model checker and simulate at scale.

Run:  python examples/design_your_own.py
"""

from __future__ import annotations

import random

import repro
from repro.core import (
    CandidateTriple,
    Constraint,
    ConvergenceBinding,
    NonmaskingDesign,
    Program,
    Variable,
    all_of,
    render_program,
)
from repro.core.domains import IntegerRangeDomain
from repro.core.expr import V, expr_action
from repro.protocols.base import process_nodes
from repro.scheduler import RandomScheduler
from repro.simulation import run
from repro.topology import RootedTree, balanced_tree, random_tree


SENSOR_READING = 7  # the root's fixed input, to broadcast everywhere


def build_broadcast_design(
    tree: RootedTree, reading: int, *, domain_hi: int = 9
) -> NonmaskingDesign:
    """The design, built exactly the way a library user would."""
    domain = IntegerRangeDomain(0, domain_hi)

    # 1. Variables and the (empty) closure program.
    variables = [Variable(f"m.{j}", domain, process=j) for j in tree.nodes]
    closure = Program("broadcast-closure", variables, [])

    # 2.+3. One constraint per node, each with its convergence action.
    constraints: list[Constraint] = []
    bindings: list[ConvergenceBinding] = []
    root_value = V(f"m.{tree.root}")
    root_constraint = Constraint(
        name=f"B.{tree.root}",
        predicate=(root_value == reading).predicate(),
    )
    constraints.append(root_constraint)
    bindings.append(
        ConvergenceBinding(
            constraint=root_constraint,
            action=expr_action(
                f"sense.{tree.root}",
                root_value != reading,
                {f"m.{tree.root}": reading},
                process=tree.root,
            ),
        )
    )
    for j in tree.non_root_nodes():
        mine, theirs = V(f"m.{j}"), V(f"m.{tree.parent(j)}")
        constraint = Constraint(
            name=f"B.{j}", predicate=(mine == theirs).predicate()
        )
        constraints.append(constraint)
        bindings.append(
            ConvergenceBinding(
                constraint=constraint,
                action=expr_action(
                    f"copy.{j}", mine != theirs, {f"m.{j}": theirs}, process=j
                ),
            )
        )

    candidate = CandidateTriple(
        program=closure,
        invariant=all_of([c.predicate for c in constraints], name="S(broadcast)"),
        constraints=tuple(constraints),
    )
    return NonmaskingDesign(
        name="broadcast",
        candidate=candidate,
        bindings=tuple(bindings),
        nodes=process_nodes(closure),
    )


def main() -> None:
    # --- design and certify on a small instance -------------------------
    # Exhaustive tools want a small product space: 7 nodes x values 0..3
    # is 4^7 = 16384 states. The design itself is size-independent.
    tree = balanced_tree(2, 2)
    design = build_broadcast_design(tree, reading=2, domain_hi=3)
    print(f"constraint graph: {design.graph!r}")

    states = list(design.program.state_space())
    print(f"(exhaustive set: {len(states)} states — small instance only!)")
    report = design.validate(states)
    print(report.selected.describe())
    assert report.ok

    tolerance = repro.verify(
        design.program, s=design.candidate.invariant, states=states
    )
    print(f"model checker agrees: {tolerance.ok}\n")

    # --- the deployed program, in the paper's notation -------------------
    print(render_program(design.program))
    print()

    # --- simulate at a scale no exhaustive tool reaches ------------------
    big_tree = random_tree(200, seed=3)
    big = build_broadcast_design(big_tree, SENSOR_READING)
    invariant = big.candidate.invariant
    result = run(
        big.program,
        big.program.random_state(random.Random(1)),
        RandomScheduler(2),
        max_steps=500_000,
        target=invariant,
        stop_on_target=True,
    )
    print(
        f"200-node random tree, fully corrupted start: stabilized in "
        f"{result.stabilization_index} steps"
    )
    final = result.computation.final_state
    assert all(final[f"m.{j}"] == SENSOR_READING for j in big_tree.nodes)
    print("every node holds the root's reading — broadcast complete")


if __name__ == "__main__":
    main()
