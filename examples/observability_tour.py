"""Observability tour: watch a diffusing computation heal from a fault.

The paper's Section 5.1 design tolerates faults that arbitrarily corrupt
the state of any number of nodes: the invariant is violated only
temporarily, and the per-node constraints ``R.j`` are re-established by
the convergence actions. This tour makes that visible with the
:mod:`repro.observability` subsystem:

1. run the diffusing protocol on a small tree with a tracer attached,
   corrupting every node mid-run;
2. print the structured event stream around the fault — the fault event,
   the invariant flipping off and back on, and each watched constraint
   ``R.j`` re-establishing;
3. count events per kind and aggregate verification-service cache
   metrics into a ``RunReport``.

Run:  python examples/observability_tour.py
See:  docs/OBSERVABILITY.md for the full event taxonomy.
"""

from __future__ import annotations

import random

from repro.faults.injectors import corrupt_everything
from repro.faults.scenarios import ScheduledFaults
from repro.observability import (
    CountingSink,
    MetricsRegistry,
    RingBufferSink,
    Tracer,
)
from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant
from repro.scheduler import RandomScheduler
from repro.simulation import run
from repro.topology import chain_tree
from repro.verification import VerificationService

FAULT_STEP = 25


def main() -> None:
    tree = chain_tree(4)
    design = build_diffusing_design(tree)
    invariant = diffusing_invariant(tree)

    # One tracer, two sinks: the ring buffer keeps the stream for
    # inspection, the counting sink tallies events per kind.
    ring = RingBufferSink()
    counting = CountingSink()
    tracer = Tracer(sinks=[ring, counting])

    # Watch each constraint R.j individually — watched predicates are
    # only evaluated because a tracer is attached.
    watch = {
        binding.constraint.name: binding.constraint.predicate
        for binding in design.bindings
    }

    result = run(
        design.program,
        design.program.random_state(random.Random(3)),
        RandomScheduler(seed=1).attach_tracer(tracer),
        max_steps=2_000,
        target=invariant,
        faults=ScheduledFaults({FAULT_STEP: corrupt_everything(design.program)}),
        tracer=tracer,
        watch=watch,
    )

    print(f"=== {design.name} on a 4-node chain ===")
    print(f"steps={result.steps} faults={result.fault_count} "
          f"stabilization_index={result.stabilization_index}")
    print()

    print("--- the recovery, in events ---")
    interesting = tracer.events_of(
        "fault.injected",
        "target.established",
        "target.violated",
        "constraint.established",
        "constraint.violated",
    )
    fault_index = next(
        event.fields["index"]
        for event in interesting
        if event.kind == "fault.injected"
    )
    for event in interesting:
        # Show the initial convergence briefly, then everything from the
        # fault onward.
        if event.fields["index"] <= 2 or event.fields["index"] >= fault_index:
            print(f"  {event}")
    print()

    print("--- events per kind ---")
    width = max(len(kind) for kind in counting.counts)
    for kind, count in sorted(counting.counts.items()):
        print(f"  {kind.ljust(width)}  {count}")
    print()

    # The verification service feeds the same metrics machinery: verify
    # the instance twice and read the cache behaviour off the report.
    service = VerificationService(metrics=MetricsRegistry())
    verdict = service.verify_tolerance(design.program, invariant, case=design.name)
    service.verify_tolerance(design.program, invariant, case=design.name)
    print(f"--- verification: ok={verdict.ok} ({verdict.record['classification']}) ---")
    print(service.report(case=design.name).describe())


if __name__ == "__main__":
    main()
