"""The protocol zoo: every protocol in the library, validated and run.

For each protocol this script reports which validation route certifies
it — a theorem certificate (the paper's method), a convergence stair
(the paper's Section 7 refinement), or plain exhaustive model checking —
and then simulates stabilization from random corruption at a larger
scale than the exhaustive tools can reach.

Run:  python examples/protocol_zoo.py
"""

from __future__ import annotations

import repro
from repro.analysis import print_table
from repro.protocols.coloring import build_coloring_design, coloring_invariant
from repro.protocols.diffusing import build_diffusing_design, diffusing_invariant
from repro.protocols.leader_election import (
    build_leader_election_design,
    election_invariant,
)
from repro.protocols.matching import build_matching_program, matching_invariant
from repro.protocols.spanning_tree import (
    build_spanning_tree_program,
    spanning_tree_invariant,
    spanning_tree_stair,
)
from repro.protocols.three_constraint import (
    build_ordered_design,
    window_states,
    xyz_invariant,
)
from repro.protocols.token_ring import (
    build_dijkstra_ring,
    build_token_ring_design,
    window_states as ring_window,
)
from repro.scheduler import RandomScheduler
from repro.simulation import stabilization_trials
from repro.topology import balanced_tree, chain_tree, random_connected_graph, random_tree
from repro.verification import check_stair


def main() -> None:
    rows = []

    # --- Paper protocols ----------------------------------------------------
    design = build_diffusing_design(chain_tree(4))
    small_states = list(design.program.state_space())
    cert = design.validate(small_states)
    big = build_diffusing_design(random_tree(31, seed=4))
    stats = stabilization_trials(
        big.program, diffusing_invariant(random_tree(31, seed=4)),
        lambda s: RandomScheduler(s), trials=10, max_steps=50_000, base_seed=1,
    )
    rows.append(["diffusing (S5.1)", "Theorem 1", cert.ok, 31, stats.stabilization_rate,
                 stats.steps.mean if stats.steps else None])

    design = build_token_ring_design(4)
    cert = design.validate(ring_window(4, 0, 3))
    program, spec = build_dijkstra_ring(16, k=17)
    stats = stabilization_trials(
        program, spec, lambda s: RandomScheduler(s),
        trials=10, max_steps=100_000, base_seed=2,
    )
    rows.append(["token ring (S7.1)", "Theorem 3", cert.ok, 16,
                 stats.stabilization_rate, stats.steps.mean if stats.steps else None])

    design = build_ordered_design()
    cert = design.validate(window_states(3))
    stats = stabilization_trials(
        design.program, xyz_invariant(), lambda s: RandomScheduler(s),
        trials=10, max_steps=100, base_seed=3,
    )
    rows.append(["x/y/z ordered (S6)", "Theorem 2", cert.ok, 3,
                 stats.stabilization_rate, stats.steps.mean if stats.steps else None])

    # --- Extensions -----------------------------------------------------------
    tree = balanced_tree(2, 2)
    design = build_coloring_design(tree, k=3)
    cert = design.validate(list(design.program.state_space()))
    big_tree = random_tree(63, seed=6)
    big_design = build_coloring_design(big_tree, k=3)
    stats = stabilization_trials(
        big_design.program, coloring_invariant(big_tree),
        lambda s: RandomScheduler(s), trials=10, max_steps=50_000, base_seed=4,
    )
    rows.append(["tree coloring", "Theorem 1", cert.ok, 63,
                 stats.stabilization_rate, stats.steps.mean if stats.steps else None])

    design = build_leader_election_design(chain_tree(4))
    cert = design.validate(list(design.program.state_space()))
    big_tree = random_tree(63, seed=7)
    big_design = build_leader_election_design(big_tree)
    stats = stabilization_trials(
        big_design.program, election_invariant(big_tree),
        lambda s: RandomScheduler(s), trials=10, max_steps=50_000, base_seed=5,
    )
    rows.append(["leader election", "Theorem 2", cert.ok, 63,
                 stats.stabilization_rate, stats.steps.mean if stats.steps else None])

    graph = random_connected_graph(5, 2, seed=1)
    program = build_spanning_tree_program(graph, 0)
    stair = check_stair(program, spanning_tree_stair(graph, 0), program.state_space())
    big_graph = random_connected_graph(40, 15, seed=2)
    big_program = build_spanning_tree_program(big_graph, 0)
    stats = stabilization_trials(
        big_program, spanning_tree_invariant(big_graph, 0),
        lambda s: RandomScheduler(s), trials=10, max_steps=100_000, base_seed=6,
    )
    rows.append(["BFS spanning tree", "convergence stair", stair.ok, 40,
                 stats.stabilization_rate, stats.steps.mean if stats.steps else None])

    graph = random_connected_graph(5, 2, seed=3)
    program = build_matching_program(graph)
    check = repro.verify(program, s=matching_invariant(graph),
                         states=program.state_space())
    big_graph = random_connected_graph(24, 10, seed=4)
    big_program = build_matching_program(big_graph)
    stats = stabilization_trials(
        big_program, matching_invariant(big_graph),
        lambda s: RandomScheduler(s), trials=10, max_steps=100_000, base_seed=7,
    )
    rows.append(["maximal matching", "model checking", check.ok, 24,
                 stats.stabilization_rate, stats.steps.mean if stats.steps else None])

    print_table(
        ["protocol", "certificate", "certified", "sim size", "stab. rate", "mean steps"],
        rows,
        title="Protocol zoo: certification route + stabilization at scale",
    )


if __name__ == "__main__":
    main()
