"""Regenerate the paper's program listings and constraint-graph figures.

The paper presents two final program listings — `Diffusing-computation`
(Section 5.1) and `Token-ring` (Section 7.1) — and one constraint-graph
figure (Section 4). This script renders the library's corresponding
artifacts: guarded-command listings in the paper's notation, plus
Graphviz DOT files for every design's constraint graph, written under
``examples/artifacts/``.

Run:  python examples/paper_listings.py
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import constraint_graph_dot
from repro.core import render_program
from repro.protocols.diffusing import build_diffusing_design
from repro.protocols.three_constraint import build_out_tree_design
from repro.protocols.token_ring import build_token_ring_design
from repro.topology import chain_tree

ARTIFACTS = Path(__file__).parent / "artifacts"


def main() -> None:
    ARTIFACTS.mkdir(exist_ok=True)

    print("=== Section 5.1: program Diffusing-computation ===")
    diffusing = build_diffusing_design(chain_tree(3))
    listing = render_program(diffusing.program)
    print(listing)
    (ARTIFACTS / "diffusing_listing.txt").write_text(listing + "\n")
    print()

    print("=== Section 7.1: program Token-ring ===")
    ring = build_token_ring_design(4)
    listing = render_program(ring.program)
    print(listing)
    (ARTIFACTS / "token_ring_listing.txt").write_text(listing + "\n")
    print()

    print("=== Section 4: constraint-graph figures (DOT) ===")
    figures = {
        "xyz_out_tree.dot": build_out_tree_design().graph,
        "diffusing_graph.dot": diffusing.graph,
        "token_ring_graph.dot": ring.graph,
    }
    for filename, graph in figures.items():
        dot = constraint_graph_dot(graph, title=filename.removesuffix(".dot"))
        (ARTIFACTS / filename).write_text(dot + "\n")
        print(f"  wrote {ARTIFACTS / filename}  [{graph.classification()}]")
    print()
    print("Render with e.g.:  dot -Tpng examples/artifacts/diffusing_graph.dot -o graph.png")


if __name__ == "__main__":
    main()
