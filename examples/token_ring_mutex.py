"""Token ring as self-stabilizing mutual exclusion (paper Section 7.1).

The node holding the privilege may enter its critical section; passing
the privilege around the ring gives every node its turn. The paper's
fault model: nodes "spontaneously become privileged or unprivileged" —
here injected as corruption of the ``x`` counters — and the program must
return to the exactly-one-privilege regime on its own.

The script:

1. validates the paper's two-layer Theorem 3 design;
2. runs the ring fault-free and prints the privilege rotation;
3. injects counter corruption (creating several simultaneous
   "privileges", i.e. mutual-exclusion violations) and measures how long
   the violation window lasts;
4. sweeps Dijkstra's K parameter to locate the stabilization threshold by
   exhaustive model checking.

Run:  python examples/token_ring_mutex.py
"""

from __future__ import annotations

import random

import repro
from repro.analysis import print_table
from repro.faults import ScheduledFaults, corrupt_everything
from repro.protocols.token_ring import (
    build_dijkstra_ring,
    build_token_ring_design,
    exactly_one_privilege,
    privileged_nodes,
    window_states,
    x_var,
)
from repro.scheduler import RandomScheduler
from repro.simulation import run
from repro.topology import Ring


def validate_design() -> None:
    design = build_token_ring_design(5)
    report = design.validate(window_states(5, 0, 3))
    print(report.selected.describe())
    assert report.ok
    print()


def rotation_demo() -> None:
    print("=== privilege rotation (fault-free) ===")
    design = build_token_ring_design(5)
    ring = Ring(5)
    program = design.program
    initial = program.make_state({x_var(j): 0 for j in range(5)})
    result = run(program, initial, RandomScheduler(1), max_steps=15)
    holders = [
        privileged_nodes(ring, state)[0] for state in result.computation.states()
    ]
    print("privilege holder per step:", " -> ".join(map(str, holders)))
    print()


def corruption_demo() -> None:
    print("=== recovery from spontaneous privileges ===")
    size = 8
    design = build_token_ring_design(size)
    ring = Ring(size)
    program = design.program
    spec = exactly_one_privilege(ring)
    initial = program.make_state({x_var(j): 0 for j in range(size)})
    result = run(
        program,
        initial,
        RandomScheduler(2),
        max_steps=400,
        target=spec,
        faults=ScheduledFaults({100: corrupt_everything(program)}),
        fault_rng=random.Random(11),
    )
    privilege_counts = [
        len(privileged_nodes(ring, state))
        for state in result.computation.states()
    ]
    worst = max(privilege_counts[100:130])
    print(f"privileges right after corruption: up to {worst} simultaneously")
    print(f"single-privilege regime restored at state index {result.stabilization_index}")
    assert result.stabilized
    print()


def k_threshold_sweep() -> None:
    print("=== Dijkstra K-state threshold (exhaustive model checking) ===")
    rows = []
    for size in (3, 4, 5):
        verdicts = []
        for k in range(2, size + 2):
            program, spec = build_dijkstra_ring(size, k)
            report = repro.verify(program, s=spec, states=program.state_space())
            verdicts.append((k, report.ok))
        minimal = next(k for k, ok in verdicts if ok)
        rows.append(
            [size, ", ".join(f"K={k}:{'ok' if ok else 'FAIL'}" for k, ok in verdicts), minimal]
        )
    print_table(["ring size", "verdicts", "minimal stabilizing K"], rows)


def main() -> None:
    validate_design()
    rotation_demo()
    corruption_demo()
    k_threshold_sweep()


if __name__ == "__main__":
    main()
