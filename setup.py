"""Setuptools shim.

The project is configured in pyproject.toml; this file exists so that
``pip install -e .`` works on environments whose setuptools predates
PEP 660 editable installs (and offline environments without the ``wheel``
package).
"""

from setuptools import setup

setup()
